/**
 * @file
 * StorageFrontend contract tests.
 *
 * Byte-identity: a read routed through the frontend's shared
 * DecodeService must return exactly the bytes of the synchronous
 * BlockDevice/PoolManager path, for every service thread count and
 * for batched as well as per-call submission. Devices derive their
 * sequencer seeds from accumulated cost state, so every comparison
 * drives identically-constructed fresh objects through identical
 * call sequences.
 *
 * Concurrency: two frontends sharing one service from two threads
 * (distinct devices/pools per thread — targets are not thread-safe)
 * still produce the sequential goldens. Admission: a Reject-policy
 * service sheds frontend reads as OverloadedError in the caller's
 * thread, and the frontend's telemetry counts every call.
 */

#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/storage_frontend.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

BlockDeviceParams
deviceParams()
{
    BlockDeviceParams params;
    params.reads_per_block_access = 900;
    params.coverage = 20.0;
    return params;
}

PoolManagerParams
poolParams()
{
    PoolManagerParams params;
    params.reads_per_block_access = 1000;
    return params;
}

constexpr size_t kDeviceBlocks = 6;

std::unique_ptr<BlockDevice>
loadedDevice(uint64_t seed = 123)
{
    return test::makeLoadedDevice(deviceParams(),
                                  test::corpusBlocks(kDeviceBlocks,
                                                     seed));
}

TEST(StorageFrontendTest, RoutedDeviceReadsMatchSynchronous)
{
    // Golden: the synchronous path, one fresh device, one fixed call
    // sequence.
    auto golden_device = loadedDevice();
    auto golden_range = golden_device->readRange(1, 4);
    DecodeStats golden_range_stats = golden_device->lastStats();
    auto golden_all = golden_device->readAll();
    auto golden_block = golden_device->readBlock(3);

    for (size_t threads : {1u, 2u, 8u}) {
        DecodeServiceParams params;
        params.threads = threads;
        DecodeService service(params);
        StorageFrontend frontend(service);

        auto device = loadedDevice();
        EXPECT_EQ(frontend.readBlocks(*device, 1, 4), golden_range)
            << "threads=" << threads;
        EXPECT_EQ(device->lastStats(), golden_range_stats)
            << "threads=" << threads;
        EXPECT_EQ(frontend.readAll(*device), golden_all)
            << "threads=" << threads;
        EXPECT_EQ(frontend.readBlock(*device, 3), golden_block)
            << "threads=" << threads;
    }
}

TEST(StorageFrontendTest, RoutedPoolReadsMatchSynchronous)
{
    Bytes file_a = test::corpusBlocks(4, 7);
    Bytes file_b = test::corpusBlocks(5, 8);

    PoolManager golden_pool(poolParams());
    uint32_t a = golden_pool.storeFile(file_a);
    uint32_t b = golden_pool.storeFile(file_b);
    auto golden_a = golden_pool.readFile(a);
    auto golden_b = golden_pool.readFile(b);
    auto golden_block = golden_pool.readBlock(b, 2);
    ASSERT_TRUE(golden_a.has_value());
    EXPECT_EQ(*golden_a, file_a);

    DecodeServiceParams params;
    params.threads = 4;
    DecodeService service(params);
    StorageFrontend frontend(service);

    PoolManager pool(poolParams());
    ASSERT_EQ(pool.storeFile(file_a), a);
    ASSERT_EQ(pool.storeFile(file_b), b);
    EXPECT_EQ(frontend.readFile(pool, a), golden_a);
    EXPECT_EQ(frontend.readFile(pool, b), golden_b);
    EXPECT_EQ(pool.readBlock(b, 2, &service), golden_block);
}

TEST(StorageFrontendTest, BatchedReadsMatchPerCallReads)
{
    // Goldens: per-call synchronous reads, in the same order the
    // batch sequences its targets.
    auto golden_d1 = loadedDevice(123);
    auto golden_d2 = loadedDevice(321);
    auto golden_r1 = golden_d1->readRange(0, 2);
    auto golden_r2 = golden_d2->readRange(3, 5);

    Bytes file_a = test::corpusBlocks(4, 7);
    Bytes file_b = test::corpusBlocks(5, 8);
    PoolManager golden_pool(poolParams());
    uint32_t a = golden_pool.storeFile(file_a);
    uint32_t b = golden_pool.storeFile(file_b);
    auto golden_a = golden_pool.readFile(a);
    auto golden_b = golden_pool.readFile(b);

    DecodeServiceParams params;
    params.threads = 8;
    DecodeService service(params);
    StorageFrontend frontend(service);

    auto d1 = loadedDevice(123);
    auto d2 = loadedDevice(321);
    auto ranges = frontend.readBlocksBatch(
        {{d1.get(), 0, 2}, {d2.get(), 3, 5}});
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0], golden_r1);
    EXPECT_EQ(ranges[1], golden_r2);

    PoolManager pool(poolParams());
    ASSERT_EQ(pool.storeFile(file_a), a);
    ASSERT_EQ(pool.storeFile(file_b), b);
    auto files = frontend.readFiles(pool, {a, b});
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], golden_a);
    EXPECT_EQ(files[1], golden_b);
}

TEST(StorageFrontendTest, ConcurrentFrontendsShareOneService)
{
    constexpr size_t kRounds = 2;

    // Sequential goldens: each target object sees the same call
    // sequence the concurrent run will apply to its twin.
    std::vector<std::vector<std::optional<Bytes>>> golden_ranges;
    {
        auto device = loadedDevice();
        for (size_t round = 0; round < kRounds; ++round)
            golden_ranges.push_back(device->readRange(0, 4));
    }
    Bytes file_a = test::corpusBlocks(4, 7);
    std::vector<std::optional<Bytes>> golden_files;
    uint32_t a = 0;
    {
        PoolManager pool(poolParams());
        a = pool.storeFile(file_a);
        for (size_t round = 0; round < kRounds; ++round)
            golden_files.push_back(pool.readFile(a));
    }

    DecodeServiceParams params;
    params.threads = 4;
    DecodeService service(params);
    StorageFrontend frontend_a(service);
    StorageFrontend frontend_b(service);

    auto device = loadedDevice();
    PoolManager pool(poolParams());
    ASSERT_EQ(pool.storeFile(file_a), a);

    std::vector<std::vector<std::optional<Bytes>>> ranges(kRounds);
    std::vector<std::optional<Bytes>> files(kRounds);
    std::thread device_reader([&] {
        for (size_t round = 0; round < kRounds; ++round)
            ranges[round] = frontend_a.readBlocks(*device, 0, 4);
    });
    std::thread file_reader([&] {
        for (size_t round = 0; round < kRounds; ++round)
            files[round] = frontend_b.readFile(pool, a);
    });
    device_reader.join();
    file_reader.join();

    for (size_t round = 0; round < kRounds; ++round) {
        EXPECT_EQ(ranges[round], golden_ranges[round])
            << "round " << round;
        EXPECT_EQ(files[round], golden_files[round])
            << "round " << round;
    }
}

TEST(StorageFrontendTest, RejectOverflowSurfacesAsOverloadedError)
{
    // A long-running decode to hold the only queue slot: a large
    // device read set keeps the service busy for far longer than the
    // frontend needs to sequence and submit.
    BlockDeviceParams big = deviceParams();
    big.coverage = 30.0;
    auto busy_device = test::makeLoadedDevice(
        big, test::corpusBlocks(12, 99));
    std::vector<sim::Read> busy_reads = busy_device->sequenceAll();

    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 1;
    params.overflow = OverflowPolicy::Reject;
    params.metrics = &registry;
    DecodeService service(params);
    StorageFrontendParams frontend_params;
    frontend_params.metrics = &registry;
    StorageFrontend frontend(service, frontend_params);

    std::future<DecodeOutcome> occupier =
        service.submit(busy_device->decoder(), busy_reads);

    auto device = loadedDevice();
    EXPECT_THROW(frontend.readBlocks(*device, 0, 2),
                 OverloadedError);

    // Once the slot frees, the same frontend read goes through and
    // matches a synchronous golden driven through the same sequence
    // (the shed attempt consumed one wetlab round trip).
    EXPECT_EQ(occupier.get().status, DecodeStatus::Ok);
    auto golden_device = loadedDevice();
    golden_device->sequenceRange(0, 2);  // mirror the shed attempt
    auto golden = golden_device->readRange(0, 2);
    EXPECT_EQ(frontend.readBlocks(*device, 0, 2), golden);

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("frontend.overloaded"), 1u);
    EXPECT_EQ(snap.counters.at("frontend.range_reads"), 1u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_rejected"),
              1u);
}

TEST(StorageFrontendTest, TenantBoundFrontendsContendByteIdentically)
{
    // Two frontends bound to different tenants (3:1 weights) hammer
    // one bounded service from concurrent threads. Tenancy schedules
    // the decodes; it must never change a single byte, so every read
    // is pinned against an identically-driven synchronous twin, and
    // the per-tenant admission counters are pinned exactly.
    constexpr size_t kRounds = 2;

    std::vector<std::vector<std::optional<Bytes>>> golden_ranges;
    {
        auto device = loadedDevice();
        for (size_t round = 0; round < kRounds; ++round)
            golden_ranges.push_back(device->readRange(0, 4));
    }
    Bytes file_a = test::corpusBlocks(4, 7);
    std::vector<std::optional<Bytes>> golden_files;
    uint32_t a = 0;
    {
        PoolManager pool(poolParams());
        a = pool.storeFile(file_a);
        for (size_t round = 0; round < kRounds; ++round)
            golden_files.push_back(pool.readFile(a));
    }

    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 4;
    params.max_queue_depth = 8;
    params.metrics = &registry;
    params.tenants[1].weight = 3;
    params.tenants[2].weight = 1;
    DecodeService service(params);
    StorageFrontendParams heavy_params;
    heavy_params.metrics = &registry;
    heavy_params.tenant = 1;
    StorageFrontend heavy(service, heavy_params);
    StorageFrontendParams light_params;
    light_params.metrics = &registry;
    light_params.tenant = 2;
    StorageFrontend light(service, light_params);
    EXPECT_EQ(heavy.tenant(), 1u);
    EXPECT_EQ(light.tenant(), 2u);

    auto device = loadedDevice();
    PoolManager pool(poolParams());
    ASSERT_EQ(pool.storeFile(file_a), a);

    std::vector<std::vector<std::optional<Bytes>>> ranges(kRounds);
    std::vector<std::optional<Bytes>> files(kRounds);
    std::thread device_reader([&] {
        for (size_t round = 0; round < kRounds; ++round)
            ranges[round] = heavy.readBlocks(*device, 0, 4);
    });
    std::thread file_reader([&] {
        for (size_t round = 0; round < kRounds; ++round)
            files[round] = light.readFile(pool, a);
    });
    device_reader.join();
    file_reader.join();

    for (size_t round = 0; round < kRounds; ++round) {
        EXPECT_EQ(ranges[round], golden_ranges[round])
            << "round " << round;
        EXPECT_EQ(files[round], golden_files[round])
            << "round " << round;
    }

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.requests_admitted"),
        kRounds);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_admitted"),
        kRounds);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.requests_throttled"),
        0u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_throttled"),
        0u);
}

TEST(StorageFrontendTest, ThrottledTenantCountersArePinned)
{
    // The light tenant carries a two-request budget (burst 2, no
    // refill) on a bounded service; its first two reads succeed and
    // stay byte-identical, the third is shed by the bucket as
    // ThrottledError, and the throttled/rejected counters split
    // cleanly between the tenants. The heavy tenant is untouched.
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 4;
    params.metrics = &registry;
    params.tenants[1].weight = 3;
    params.tenants[2].burst = 2.0;  // two requests, ever
    DecodeService service(params);
    StorageFrontendParams heavy_params;
    heavy_params.metrics = &registry;
    heavy_params.tenant = 1;
    StorageFrontend heavy(service, heavy_params);
    StorageFrontendParams light_params;
    light_params.metrics = &registry;
    light_params.tenant = 2;
    StorageFrontend light(service, light_params);

    // Synchronous twin driven through the exact same call sequence
    // (the throttled attempt still consumed a wetlab round trip).
    auto golden_device = loadedDevice();
    auto golden_first = golden_device->readRange(0, 2);
    auto golden_second = golden_device->readRange(1, 3);
    golden_device->sequenceRange(2, 4);  // mirror the shed attempt

    auto device = loadedDevice();
    EXPECT_EQ(light.readBlocks(*device, 0, 2), golden_first);
    EXPECT_EQ(light.readBlocks(*device, 1, 3), golden_second);
    EXPECT_THROW(light.readBlocks(*device, 2, 4), ThrottledError);
    // ThrottledError derives from OverloadedError, so existing
    // saturation back-off handlers catch it too.
    EXPECT_THROW(
        {
            try {
                light.readBlocks(*device, 2, 4);
            } catch (const OverloadedError &) {
                throw;
            }
        },
        OverloadedError);

    // The heavy tenant still reads, byte-identical to its own twin.
    auto heavy_golden = loadedDevice(321);
    auto golden_range = heavy_golden->readRange(0, 2);
    auto heavy_device = loadedDevice(321);
    EXPECT_EQ(heavy.readBlocks(*heavy_device, 0, 2), golden_range);

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_admitted"),
        2u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_throttled"),
        2u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_rejected"),
        0u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.requests_admitted"),
        1u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.requests_throttled"),
        0u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_throttled"),
              2u);
    EXPECT_EQ(snap.counters.at("frontend.throttled"), 2u);
    EXPECT_EQ(snap.counters.at("frontend.overloaded"), 0u);
}

TEST(StorageFrontendTest, FrontendMetricsCountReads)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams service_params;
    service_params.threads = 2;
    service_params.metrics = &registry;
    DecodeService service(service_params);
    StorageFrontendParams frontend_params;
    frontend_params.metrics = &registry;
    StorageFrontend frontend(service, frontend_params);

    auto device = loadedDevice();
    auto blocks = frontend.readBlocks(*device, 0, 3);
    size_t returned = 0;
    for (const auto &block : blocks)
        returned += block.has_value() ? 1 : 0;

    Bytes file_a = test::corpusBlocks(4, 7);
    PoolManager pool(poolParams());
    uint32_t a = pool.storeFile(file_a);
    frontend.readFile(pool, a);
    frontend.readFiles(pool, {a});

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("frontend.range_reads"), 1u);
    EXPECT_EQ(snap.counters.at("frontend.file_reads"), 1u);
    EXPECT_EQ(snap.counters.at("frontend.batch_reads"), 1u);
    EXPECT_EQ(snap.counters.at("frontend.blocks_returned"),
              returned);
    EXPECT_EQ(snap.counters.at("frontend.blocks_missing"),
              4u - returned);
    EXPECT_EQ(
        snap.histograms.at("frontend.read_latency_us").count, 3u);
    // The same registry carries the service-side view: 3 frontend
    // calls = 3 decode requests admitted.
    EXPECT_EQ(snap.counters.at("decode_service.requests_submitted"),
              3u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_decoded"),
              3u);
}

} // namespace
} // namespace dnastore::core
