/**
 * @file
 * Unit tests for primer viability constraints.
 */

#include <gtest/gtest.h>

#include "primer/constraints.h"
#include "support/fixtures.h"

namespace dnastore::primer {
namespace {

// 50% GC, no homopolymer > 2, Tm in window.
const dna::Sequence &kGoodPrimer = test::fwdPrimer();

TEST(ConstraintsTest, GoodPrimerPasses)
{
    Constraints constraints;
    CheckResult result = checkComposition(kGoodPrimer, constraints);
    EXPECT_TRUE(result.gc_ok);
    EXPECT_TRUE(result.homopolymer_ok);
    EXPECT_TRUE(result.tm_ok);
    EXPECT_TRUE(result.ok());
}

TEST(ConstraintsTest, LowGcFails)
{
    Constraints constraints;
    dna::Sequence at_rich("ATATATATATATATATATAT");
    CheckResult result = checkComposition(at_rich, constraints);
    EXPECT_FALSE(result.gc_ok);
    EXPECT_FALSE(result.ok());
}

TEST(ConstraintsTest, HighGcFails)
{
    Constraints constraints;
    dna::Sequence gc_rich("GCGCGCGCGCGCGCGCGCGC");
    CheckResult result = checkComposition(gc_rich, constraints);
    EXPECT_FALSE(result.gc_ok);
}

TEST(ConstraintsTest, HomopolymerFails)
{
    Constraints constraints;
    dna::Sequence runny("AAAAGCGCGCGCGCATATAT");
    CheckResult result = checkComposition(runny, constraints);
    EXPECT_FALSE(result.homopolymer_ok);
}

TEST(ConstraintsTest, DistanceAgainstAcceptedSet)
{
    Constraints constraints;
    constraints.min_pairwise_hamming = 6;
    constraints.check_reverse_complement = false;
    std::vector<dna::Sequence> accepted = {kGoodPrimer};

    // Identical: distance 0 -> reject.
    EXPECT_FALSE(checkDistances(kGoodPrimer, accepted, constraints));

    // 4 mismatches only -> reject at threshold 6.
    dna::Sequence close("ACGTACGTACGTACGTTGCA");
    EXPECT_FALSE(checkDistances(close, accepted, constraints));

    // A very different primer -> accept.
    dna::Sequence far("GGATCCGGATCCGGATCCGG");
    EXPECT_TRUE(checkDistances(far, accepted, constraints));
}

TEST(ConstraintsTest, ReverseComplementChecked)
{
    Constraints constraints;
    constraints.min_pairwise_hamming = 4;
    constraints.check_reverse_complement = true;
    std::vector<dna::Sequence> accepted = {kGoodPrimer};

    // The reverse complement of an accepted primer must be rejected
    // when the option is on (it would anneal to the same site).
    dna::Sequence rc = kGoodPrimer.reverseComplement();
    EXPECT_FALSE(checkDistances(rc, accepted, constraints));

    constraints.check_reverse_complement = false;
    // ACGT... is its own reverse complement family; with the check
    // off only the direct distance matters.
    EXPECT_FALSE(checkDistances(kGoodPrimer, accepted, constraints));
}

TEST(ConstraintsTest, EmptyAcceptedSetAlwaysOk)
{
    Constraints constraints;
    EXPECT_TRUE(checkDistances(kGoodPrimer, {}, constraints));
}

} // namespace
} // namespace dnastore::primer
