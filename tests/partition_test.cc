/**
 * @file
 * Tests for Partition encoding (file -> molecules, patches, primers).
 */

#include <gtest/gtest.h>

#include <set>

#include "codec/base_codec.h"
#include "core/partition.h"
#include "dna/analysis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

const dna::Sequence &kFwd = test::fwdPrimer();
const dna::Sequence &kRev = test::revPrimer();

Partition
makePartition()
{
    PartitionConfig config;
    return Partition(config, kFwd, kRev, 13);
}

TEST(PartitionTest, BlocksForSizes)
{
    Partition partition = makePartition();
    EXPECT_EQ(partition.blocksFor(0), 0u);
    EXPECT_EQ(partition.blocksFor(1), 1u);
    EXPECT_EQ(partition.blocksFor(256), 1u);
    EXPECT_EQ(partition.blocksFor(257), 2u);
    // The paper's Alice file: 150KB -> 600 blocks.
    EXPECT_EQ(partition.blocksFor(150 * 1024), 600u);
}

TEST(PartitionTest, EncodeFileShape)
{
    Partition partition = makePartition();
    Bytes data = test::corpusBlocks(10, 1);
    auto molecules = partition.encodeFile(data);
    EXPECT_EQ(molecules.size(), 10u * 15u);
    std::set<std::string> unique;
    for (const auto &molecule : molecules) {
        EXPECT_EQ(molecule.seq.size(), 150u);
        EXPECT_TRUE(molecule.seq.startsWith(kFwd));
        unique.insert(molecule.seq.str());
    }
    EXPECT_EQ(unique.size(), molecules.size());
}

TEST(PartitionTest, ProvenanceTagging)
{
    Partition partition = makePartition();
    Bytes data = test::corpusBlocks(3, 2);
    auto molecules = partition.encodeFile(data);
    for (size_t i = 0; i < molecules.size(); ++i) {
        EXPECT_EQ(molecules[i].info.file_id, 13u);
        EXPECT_EQ(molecules[i].info.block, i / 15);
        EXPECT_EQ(molecules[i].info.column, i % 15);
        EXPECT_EQ(molecules[i].info.version, 0u);
    }
}

TEST(PartitionTest, BlockPrimerIs31Bases)
{
    Partition partition = makePartition();
    dna::Sequence primer = partition.blockPrimer(531);
    EXPECT_EQ(primer.size(), 31u);
    EXPECT_TRUE(primer.startsWith(kFwd));
    // Molecules of block 531 must start with this primer; others not.
    Bytes data = test::corpusBlocks(600, 3);
    auto molecules = partition.encodeFile(data);
    for (const auto &molecule : molecules) {
        EXPECT_EQ(molecule.seq.startsWith(primer),
                  molecule.info.block == 531)
            << "block " << molecule.info.block;
    }
}

TEST(PartitionTest, PatchSharesBlockPrefix)
{
    // Figure 8: data and updates share the elongated prefix and
    // differ only in the version base.
    Partition partition = makePartition();
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op.insert_bytes = {1, 2, 3};
    auto patch = partition.encodePatch(531, record, 1);
    EXPECT_EQ(patch.size(), 15u);
    dna::Sequence primer = partition.blockPrimer(531);
    for (const auto &molecule : patch) {
        EXPECT_TRUE(molecule.seq.startsWith(primer));
        EXPECT_EQ(molecule.info.version, 1u);
    }
    // The version base (position 31) differs from the original's.
    Bytes data = test::corpusBlocks(600, 3);
    auto originals = partition.encodeBlock(531, Bytes(256, 0), 0);
    EXPECT_NE(patch[0].seq[31], originals[0].seq[31]);
}

TEST(PartitionTest, PatchVersionZeroRejected)
{
    Partition partition = makePartition();
    UpdateRecord record;
    EXPECT_THROW(partition.encodePatch(5, record, 0),
                 dnastore::FatalError);
}

TEST(PartitionTest, UnitScrambleRoundTrip)
{
    Partition partition = makePartition();
    Bytes payload = test::corpusBlocks(1, 4);
    auto molecules = partition.encodeBlock(77, payload, 0);

    // Decode the columns directly (no noise) and unscramble.
    std::vector<std::optional<Bytes>> columns;
    for (const auto &molecule : molecules) {
        dna::Sequence payload_bases = molecule.seq.substr(34, 96);
        columns.emplace_back(codec::basesToBytes(payload_bases));
    }
    auto decoded = partition.unitCodec().decode(columns);
    ASSERT_TRUE(decoded.ok());
    Bytes recovered = partition.unscrambleUnit(*decoded.data, 77, 0);
    EXPECT_EQ(recovered, payload);
}

TEST(PartitionTest, ScrambledPayloadGcBalanced)
{
    // Unconstrained coding: scrambled payloads should have ~50% GC
    // on average (Section 2.1.1).
    Partition partition = makePartition();
    Bytes zeros(256, 0);  // worst case without scrambling: all-A
    auto molecules = partition.encodeBlock(3, zeros, 0);
    double gc_sum = 0.0;
    for (const auto &molecule : molecules) {
        gc_sum += dna::gcContent(molecule.seq.substr(34, 96));
    }
    EXPECT_NEAR(gc_sum / 15.0, 0.5, 0.08);
}

TEST(PartitionTest, RangePrimersCoverRange)
{
    Partition partition = makePartition();
    auto primers = partition.rangePrimers(100, 163);
    ASSERT_FALSE(primers.empty());
    Bytes data = test::corpusBlocks(300, 5);
    auto molecules = partition.encodeFile(data);
    for (const auto &molecule : molecules) {
        bool matched = false;
        for (const auto &primer : primers)
            matched |= molecule.seq.startsWith(primer);
        bool in_range = molecule.info.block >= 100 &&
                        molecule.info.block <= 163;
        EXPECT_EQ(matched, in_range) << "block " << molecule.info.block;
    }
}

TEST(PartitionTest, RejectsOversizedFile)
{
    Partition partition = makePartition();
    Bytes data(1025 * 256);
    EXPECT_THROW(partition.encodeFile(data), dnastore::FatalError);
}

TEST(PartitionTest, RejectsMismatchedPrimerLength)
{
    PartitionConfig config;
    EXPECT_THROW(Partition(config, dna::Sequence("ACGT"), kRev, 1),
                 dnastore::FatalError);
}

} // namespace
} // namespace dnastore::core
