/**
 * @file
 * Fault-injection round-trip test matrix.
 *
 * Every cell drives the full channel — parallel encode → synthesis →
 * PCR amplification → noisy sequencing → decode — over a grid of
 * sequencer error rates × read coverage × partition counts with
 * seeded RNG streams, and asserts:
 *
 *  1. recovered bytes: every block of every partition decodes back to
 *     its source slice through both Decoder::decodeAll and a
 *     DecodeService batch;
 *  2. determinism: the service outcome (units AND DecodeStats) is
 *     byte-identical to the sequential golden decode, for the
 *     single-threaded and the sharded service alike;
 *  3. a literal golden DecodeStats pin for one canonical cell, so a
 *     future scaling PR that silently perturbs any pipeline stage
 *     trips this suite rather than shipping a behavior change.
 *
 * Cells run as separate gtest parameterized cases, so `ctest -j`
 * shards the matrix across cores.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/decode_service.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

constexpr size_t kBlocksPerPartition = 5;

/** One matrix cell: channel noise x read budget x device sharding. */
struct Cell
{
    double sub_rate;     ///< sequencer substitution rate
    double indel_rate;   ///< sequencer insertion = deletion rate
    size_t coverage;     ///< reads per molecule
    size_t partitions;   ///< read sets decoded in one batch
};

std::string
cellName(const testing::TestParamInfo<Cell> &info)
{
    const Cell &cell = info.param;
    return "sub" + std::to_string(int(cell.sub_rate * 10000)) +
           "_cov" + std::to_string(cell.coverage) + "_parts" +
           std::to_string(cell.partitions);
}

/** Everything one partition contributes to a cell. */
struct PartitionUnderTest
{
    std::unique_ptr<Partition> partition;
    std::unique_ptr<Decoder> decoder;
    Bytes data;
    std::vector<sim::Read> reads;
};

/**
 * Build partition @p p's leg of the channel: encode (alternating
 * sequential/parallel to cover both paths), synthesize, amplify with
 * the partition's main primers, and sequence at the cell's error
 * rates. All seeds derive from (cell, p) so every run is identical.
 */
PartitionUnderTest
buildLeg(const Cell &cell, size_t p)
{
    PartitionUnderTest leg;
    const test::PrimerPair &primers = test::primerPair(p);
    leg.partition = std::make_unique<Partition>(
        test::partitionConfig(p), primers.forward, primers.reverse,
        static_cast<uint32_t>(13 + p));
    leg.data =
        test::corpusBlocks(kBlocksPerPartition, test::kTestSeed + p);

    EncodeParams encode;
    encode.threads = p % 2 == 0 ? 1 : 4;
    sim::SynthesisParams synthesis;
    synthesis.seed = 1000 + p;
    sim::Pool pool = sim::synthesize(
        leg.partition->encodeFile(leg.data, encode), synthesis);

    // Whole-partition amplification (the readAll access pattern).
    sim::PcrParams pcr;
    pcr.cycles = 15;
    sim::Pool product = sim::runPcr(
        pool, {sim::PcrPrimer{primers.forward, 1.0}},
        primers.reverse, pcr);

    sim::SequencerParams sequencer;
    sequencer.sub_rate = cell.sub_rate;
    sequencer.ins_rate = cell.indel_rate;
    sequencer.del_rate = cell.indel_rate;
    sequencer.seed = 7 + 131 * p + 31 * cell.coverage +
                     static_cast<uint64_t>(cell.sub_rate * 1e5);
    size_t budget = kBlocksPerPartition *
                    leg.partition->config().rs_n * cell.coverage;
    leg.reads = sim::sequencePool(product, budget, sequencer);

    DecoderParams params;
    params.threads = 1;
    leg.decoder = std::make_unique<Decoder>(*leg.partition, params);
    return leg;
}

class RoundtripMatrixTest : public ::testing::TestWithParam<Cell>
{};

TEST_P(RoundtripMatrixTest, RecoversBytesAndServiceMatchesGolden)
{
    const Cell &cell = GetParam();
    std::vector<PartitionUnderTest> legs;
    for (size_t p = 0; p < cell.partitions; ++p)
        legs.push_back(buildLeg(cell, p));

    // Sequential golden decode per partition + recovered-byte check.
    std::vector<DecodeOutcome> golden(cell.partitions);
    for (size_t p = 0; p < cell.partitions; ++p) {
        golden[p].units = legs[p].decoder->decodeAll(
            legs[p].reads, &golden[p].stats);
        EXPECT_EQ(golden[p].stats.units_decoded, kBlocksPerPartition)
            << "partition " << p;
        for (uint64_t block = 0; block < kBlocksPerPartition; ++block) {
            auto it = golden[p].units.find(block);
            ASSERT_NE(it, golden[p].units.end())
                << "partition " << p << " block " << block;
            auto version = it->second.versions.find(0);
            ASSERT_NE(version, it->second.versions.end())
                << "partition " << p << " block " << block;
            Bytes recovered = version->second;
            recovered.resize(
                legs[p].partition->config().block_data_bytes);
            EXPECT_TRUE(test::blockMatches(recovered, legs[p].data,
                                           block))
                << "partition " << p;
        }
    }

    // The same read sets through a DecodeService batch must match the
    // goldens exactly, single-threaded and sharded alike.
    for (size_t threads : {1u, 4u}) {
        DecodeServiceParams params;
        params.threads = threads;
        DecodeService service(params);
        std::vector<DecodeRequest> batch(cell.partitions);
        for (size_t p = 0; p < cell.partitions; ++p) {
            batch[p].decoder = legs[p].decoder.get();
            batch[p].reads = legs[p].reads;
        }
        auto futures = service.submitBatch(std::move(batch));
        for (size_t p = 0; p < cell.partitions; ++p) {
            DecodeOutcome outcome = futures[p].get();
            EXPECT_EQ(outcome.units, golden[p].units)
                << "threads=" << threads << " partition=" << p;
            EXPECT_EQ(outcome.stats, golden[p].stats)
                << "threads=" << threads << " partition=" << p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundtripMatrixTest,
    testing::Values(Cell{0.004, 0.0008, 12, 1},
                    Cell{0.004, 0.0008, 12, 3},
                    Cell{0.004, 0.0008, 22, 1},
                    Cell{0.004, 0.0008, 22, 3},
                    Cell{0.015, 0.003, 12, 1},
                    Cell{0.015, 0.003, 12, 3},
                    Cell{0.015, 0.003, 22, 1},
                    Cell{0.015, 0.003, 22, 3}),
    cellName);

/**
 * Synthesis-side fault injection: molecule dropout (erasures for the
 * outer code) plus erroneous byproduct species (clustering and
 * consensus stress) on top of sequencer noise.
 */
TEST(RoundtripFaultsTest, SynthesisDropoutAndByproductsStillRecover)
{
    const test::PrimerPair &primers = test::primerPair(1);
    Partition partition(test::partitionConfig(1), primers.forward,
                        primers.reverse, 14);
    Bytes data =
        test::corpusBlocks(kBlocksPerPartition, test::kTestSeed + 9);

    sim::SynthesisParams synthesis;
    synthesis.seed = 4242;
    synthesis.dropout_rate = 0.02;
    synthesis.byproduct_fraction = 0.03;
    synthesis.byproduct_variants = 2;
    sim::Pool pool =
        sim::synthesize(partition.encodeFile(data), synthesis);

    sim::PcrParams pcr;
    pcr.cycles = 15;
    sim::Pool product = sim::runPcr(
        pool, {sim::PcrPrimer{primers.forward, 1.0}}, primers.reverse,
        pcr);

    sim::SequencerParams sequencer;
    sequencer.sub_rate = 0.01;
    sequencer.ins_rate = 0.002;
    sequencer.del_rate = 0.002;
    sequencer.seed = 97;
    std::vector<sim::Read> reads = sim::sequencePool(
        product, kBlocksPerPartition * partition.config().rs_n * 25,
        sequencer);

    DecoderParams params;
    params.threads = 1;
    Decoder decoder(partition, params);
    DecodeOutcome golden;
    golden.units = decoder.decodeAll(reads, &golden.stats);
    EXPECT_EQ(golden.stats.units_decoded, kBlocksPerPartition);
    for (uint64_t block = 0; block < kBlocksPerPartition; ++block) {
        Bytes recovered = golden.units.at(block).versions.at(0);
        recovered.resize(partition.config().block_data_bytes);
        EXPECT_TRUE(test::blockMatches(recovered, data, block));
    }

    DecodeServiceParams service_params;
    service_params.threads = 4;
    DecodeService service(service_params);
    EXPECT_EQ(service.submit(decoder, reads).get(), golden);
}

/**
 * Literal golden pin for one canonical cell (high noise, low
 * coverage, single partition). These counters are a fingerprint of
 * the whole pipeline — primer filter, clustering, consensus, index
 * decode, RS errors-and-erasures — under fixed seeds; any drift means
 * an (intended or not) behavior change, and the numbers here must be
 * re-derived and justified in that PR.
 */
TEST(RoundtripGoldenTest, CanonicalCellStatsArePinned)
{
    Cell cell{0.015, 0.003, 12, 1};
    PartitionUnderTest leg = buildLeg(cell, 0);
    DecodeStats stats;
    auto units = leg.decoder->decodeAll(leg.reads, &stats);

    // Pinned fingerprint (see header comment before editing). The 3
    // failed units are spurious addresses assembled from noisy index
    // decodes; the 5 real units all decode.
    DecodeStats golden;
    golden.reads_in = 900;
    golden.reads_primer_matched = 899;
    golden.clusters_total = 182;
    golden.clusters_used = 97;
    golden.strands_recovered = 94;
    golden.duplicate_addresses = 16;
    golden.index_rejects = 3;
    golden.units_attempted = 8;
    golden.units_decoded = 5;
    golden.units_failed = 3;
    golden.symbol_errors_corrected = 12;
    golden.erasures_filled = 0;
    golden.candidate_retries = 3;
    // One-shot decode consumes every read it is offered: skipped
    // reads exist only for early-terminated streaming sessions.
    golden.reads_consumed = 900;
    golden.reads_skipped = 0;
    golden.units_emitted_early = 0;
    EXPECT_EQ(stats, golden);
    EXPECT_EQ(units.size(), 5u);
}

} // namespace
} // namespace dnastore::core
