/**
 * @file
 * Unit and property tests for GF(256) and RS over GF(256).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "ecc/gf256.h"
#include "ecc/reed_solomon256.h"

namespace dnastore::ecc {
namespace {

TEST(GF256Test, MulIdentityAndZero)
{
    for (unsigned a = 0; a < 256; ++a) {
        EXPECT_EQ(GF256::mul(static_cast<uint8_t>(a), 1), a);
        EXPECT_EQ(GF256::mul(static_cast<uint8_t>(a), 0), 0);
    }
}

TEST(GF256Test, InverseProperty)
{
    for (unsigned a = 1; a < 256; ++a) {
        EXPECT_EQ(GF256::mul(static_cast<uint8_t>(a),
                             GF256::inv(static_cast<uint8_t>(a))),
                  1);
    }
    EXPECT_THROW(GF256::inv(0), dnastore::PanicError);
}

TEST(GF256Test, MulCommutes)
{
    dnastore::Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        auto a = static_cast<uint8_t>(rng.nextBelow(256));
        auto b = static_cast<uint8_t>(rng.nextBelow(256));
        EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    }
}

TEST(GF256Test, Distributivity)
{
    dnastore::Rng rng(2);
    for (int trial = 0; trial < 2000; ++trial) {
        auto a = static_cast<uint8_t>(rng.nextBelow(256));
        auto b = static_cast<uint8_t>(rng.nextBelow(256));
        auto c = static_cast<uint8_t>(rng.nextBelow(256));
        EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
                  GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
    }
}

TEST(GF256Test, AlphaGeneratesFullGroup)
{
    std::set<uint8_t> seen;
    for (int n = 0; n < 255; ++n)
        seen.insert(GF256::alphaPow(n));
    EXPECT_EQ(seen.size(), 255u);
    EXPECT_EQ(GF256::alphaPow(255), 1);
}

TEST(GF256Test, LogExpInverse)
{
    for (unsigned a = 1; a < 256; ++a) {
        EXPECT_EQ(GF256::alphaPow(static_cast<int>(
                      GF256::log(static_cast<uint8_t>(a)))),
                  a);
    }
}

TEST(GF256Test, MulDivRoundTripAllPairs)
{
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 1; b < 256; ++b) {
            EXPECT_EQ(GF256::div(GF256::mul(static_cast<uint8_t>(a),
                                            static_cast<uint8_t>(b)),
                                 static_cast<uint8_t>(b)),
                      a);
        }
    }
    EXPECT_THROW(GF256::div(1, 0), dnastore::PanicError);
}

TEST(GF256Test, PowRoundTripsThroughNegativeExponents)
{
    for (unsigned a = 1; a < 256; ++a) {
        for (int n : {-255, -3, -1, 0, 1, 2, 7, 254, 255, 510}) {
            EXPECT_EQ(GF256::mul(GF256::pow(static_cast<uint8_t>(a), n),
                                 GF256::pow(static_cast<uint8_t>(a),
                                            -n)),
                      1)
                << "a=" << a << " n=" << n;
        }
    }
}

TEST(GF256Test, PowMatchesRepeatedMultiplication)
{
    for (unsigned a = 1; a < 256; ++a) {
        uint8_t acc = 1;
        for (int n = 0; n < 16; ++n) {
            EXPECT_EQ(GF256::pow(static_cast<uint8_t>(a), n), acc);
            acc = GF256::mul(acc, static_cast<uint8_t>(a));
        }
    }
}

TEST(GF256Test, ZeroLogSentinelIsNotAValidExponent)
{
    EXPECT_GE(GF256::kZeroLogSentinel, GF256::kMultGroupOrder);
    EXPECT_THROW(GF256::log(0), dnastore::PanicError);
}

TEST(GF256Test, NibbleMulTablesMatchCheckedMul)
{
    const uint8_t *lo = GF256::mulTablesLo();
    const uint8_t *hi = GF256::mulTablesHi();
    for (unsigned c = 0; c < 256; ++c) {
        for (unsigned x = 0; x < 256; ++x) {
            EXPECT_EQ(static_cast<uint8_t>(lo[c * 16 + (x & 0xF)] ^
                                           hi[c * 16 + (x >> 4)]),
                      GF256::mul(static_cast<uint8_t>(c),
                                 static_cast<uint8_t>(x)));
        }
    }
}

std::vector<uint8_t>
randomData(dnastore::Rng &rng, unsigned k)
{
    std::vector<uint8_t> data(k);
    for (uint8_t &symbol : data)
        symbol = static_cast<uint8_t>(rng.nextBelow(256));
    return data;
}

TEST(ReedSolomon256Test, SystematicCleanRoundTrip)
{
    ReedSolomon256 rs(255, 223);  // the classic CCSDS geometry
    dnastore::Rng rng(3);
    std::vector<uint8_t> data = randomData(rng, 223);
    std::vector<uint8_t> codeword = rs.encode(data);
    ASSERT_EQ(codeword.size(), 255u);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), codeword.begin()));
    Rs256DecodeResult result = rs.decode(codeword);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.codeword, codeword);
}

TEST(ReedSolomon256Test, CorrectsUpToSixteenErrors)
{
    ReedSolomon256 rs(255, 223);  // t = 16
    dnastore::Rng rng(4);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<uint8_t> codeword = rs.encode(randomData(rng, 223));
        std::vector<uint8_t> corrupted = codeword;
        std::vector<size_t> positions(255);
        for (size_t i = 0; i < 255; ++i)
            positions[i] = i;
        rng.shuffle(positions);
        for (int e = 0; e < 16; ++e) {
            corrupted[positions[e]] ^=
                static_cast<uint8_t>(1 + rng.nextBelow(255));
        }
        Rs256DecodeResult result = rs.decode(corrupted);
        ASSERT_TRUE(result.ok()) << "trial " << trial;
        EXPECT_EQ(*result.codeword, codeword);
        EXPECT_EQ(result.errors_corrected, 16u);
    }
}

TEST(ReedSolomon256Test, CorrectsFullErasureBudget)
{
    ReedSolomon256 rs(60, 40);
    dnastore::Rng rng(5);
    std::vector<uint8_t> codeword = rs.encode(randomData(rng, 40));
    std::vector<uint8_t> corrupted = codeword;
    std::vector<size_t> erasures;
    for (size_t pos = 0; pos < 20; ++pos) {
        erasures.push_back(pos * 3);
        corrupted[pos * 3] = static_cast<uint8_t>(rng.nextBelow(256));
    }
    Rs256DecodeResult result = rs.decode(corrupted, erasures);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.codeword, codeword);
}

TEST(ReedSolomon256Test, MixedErrorsAndErasures)
{
    ReedSolomon256 rs(100, 80);  // parity 20: 2e + r <= 20
    dnastore::Rng rng(6);
    std::vector<uint8_t> codeword = rs.encode(randomData(rng, 80));
    std::vector<uint8_t> corrupted = codeword;
    std::vector<size_t> erasures = {5, 17, 33, 49, 71, 90};
    for (size_t pos : erasures)
        corrupted[pos] = static_cast<uint8_t>(rng.nextBelow(256));
    for (size_t pos : {size_t{2}, size_t{40}, size_t{60},
                       size_t{75}, size_t{99}, size_t{20},
                       size_t{55}}) {
        corrupted[pos] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
    }
    Rs256DecodeResult result = rs.decode(corrupted, erasures);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.codeword, codeword);
}

TEST(ReedSolomon256Test, BeyondCapabilityFailsCleanly)
{
    ReedSolomon256 rs(30, 26);  // t = 2
    dnastore::Rng rng(7);
    std::vector<uint8_t> codeword = rs.encode(randomData(rng, 26));
    std::vector<uint8_t> corrupted = codeword;
    for (size_t pos : {size_t{0}, size_t{7}, size_t{15}})
        corrupted[pos] ^= 0x42;
    EXPECT_NO_THROW(rs.decode(corrupted));
}

TEST(ReedSolomon256Test, ParameterValidation)
{
    EXPECT_THROW(ReedSolomon256(256, 200), dnastore::FatalError);
    EXPECT_THROW(ReedSolomon256(100, 100), dnastore::FatalError);
}

/** Property sweep over (errors, erasures) within capability. */
class Rs256CapabilityTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(Rs256CapabilityTest, CorrectsWithinCapability)
{
    auto [errors, erasures] = GetParam();
    ReedSolomon256 rs(63, 47);  // parity 16
    ASSERT_LE(2 * errors + erasures, 16);
    dnastore::Rng rng(800 + errors * 20 + erasures);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<uint8_t> codeword = rs.encode(randomData(rng, 47));
        std::vector<uint8_t> corrupted = codeword;
        std::vector<size_t> positions(63);
        for (size_t i = 0; i < 63; ++i)
            positions[i] = i;
        rng.shuffle(positions);
        std::vector<size_t> erased(positions.begin(),
                                   positions.begin() + erasures);
        for (size_t pos : erased)
            corrupted[pos] = static_cast<uint8_t>(rng.nextBelow(256));
        for (int e = 0; e < errors; ++e) {
            corrupted[positions[erasures + e]] ^=
                static_cast<uint8_t>(1 + rng.nextBelow(255));
        }
        Rs256DecodeResult result = rs.decode(corrupted, erased);
        ASSERT_TRUE(result.ok())
            << "errors=" << errors << " erasures=" << erasures;
        EXPECT_EQ(*result.codeword, codeword);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, Rs256CapabilityTest,
    ::testing::Values(std::pair{0, 16}, std::pair{8, 0},
                      std::pair{4, 8}, std::pair{6, 4},
                      std::pair{1, 14}, std::pair{7, 2}));

} // namespace
} // namespace dnastore::ecc
