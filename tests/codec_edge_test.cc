/**
 * @file
 * Edge-case tests for the codec error paths: toBase4 overflow
 * boundaries, constrained-codec homopolymer/GC behaviour on
 * adversarial payloads, primer-composition rejection boundaries, and
 * the scrambler involution over randomized buffers.
 */

#include <gtest/gtest.h>

#include <string>

#include "codec/base4.h"
#include "codec/constrained.h"
#include "codec/scrambler.h"
#include "common/error.h"
#include "dna/analysis.h"
#include "primer/constraints.h"
#include "support/fixtures.h"

namespace dnastore::codec {
namespace {

// ---------------------------------------------------------------- base4

TEST(Base4EdgeTest, LargestValueThatFitsIsAccepted)
{
    for (size_t length : {1u, 2u, 5u, 16u}) {
        uint64_t max = (uint64_t(1) << (2 * length)) - 1;
        Digits digits = toBase4(max, length);
        EXPECT_EQ(digits.size(), length);
        for (uint8_t digit : digits) {
            EXPECT_EQ(digit, 3);
        }
        EXPECT_EQ(fromBase4(digits), max);
    }
}

TEST(Base4EdgeTest, SmallestValueThatOverflowsIsRejected)
{
    for (size_t length : {1u, 2u, 5u, 16u}) {
        uint64_t first_too_big = uint64_t(1) << (2 * length);
        EXPECT_THROW(toBase4(first_too_big, length), FatalError)
            << "length " << length;
    }
}

TEST(Base4EdgeTest, ZeroLengthHoldsOnlyZero)
{
    EXPECT_TRUE(toBase4(0, 0).empty());
    EXPECT_THROW(toBase4(1, 0), FatalError);
}

TEST(Base4EdgeTest, FullWidthUint64RoundTrips)
{
    // 32 base-4 digits exactly cover uint64; the all-ones value must
    // survive and 32 digits must never overflow.
    uint64_t max = ~uint64_t(0);
    EXPECT_EQ(fromBase4(toBase4(max, 32)), max);
}

TEST(Base4EdgeTest, OutOfRangeDigitPanics)
{
    EXPECT_THROW(fromBase4({1, 4, 0}), PanicError);
}

// ------------------------------------------------------- rotation codec

std::vector<uint8_t>
patternBytes(size_t count, uint8_t a, uint8_t b)
{
    std::vector<uint8_t> data(count);
    for (size_t i = 0; i < count; ++i) {
        data[i] = (i % 2 == 0) ? a : b;
    }
    return data;
}

TEST(RotationCodecEdgeTest, AdversarialPayloadsStayHomopolymerFree)
{
    // Constant and alternating payloads are the classic worst case for
    // run-length constraints; the rotation construction must reject a
    // repeat of the previous base at every single position.
    const std::vector<std::vector<uint8_t>> payloads = {
        std::vector<uint8_t>(64, 0x00),
        std::vector<uint8_t>(64, 0xFF),
        std::vector<uint8_t>(64, 0xAA),
        patternBytes(64, 0x00, 0xFF),
        patternBytes(64, 0xCC, 0x33),
    };
    for (const auto &payload : payloads) {
        dna::Sequence encoded = RotationCodec::encode(payload);
        EXPECT_LE(dna::maxHomopolymerRun(encoded), 1u);
        EXPECT_EQ(RotationCodec::decode(encoded, payload.size()), payload);
    }
}

TEST(RotationCodecEdgeTest, RandomPayloadsRoundTripAtOddSizes)
{
    // Sizes straddling the 4-byte chunk boundary exercise the padding
    // path of the chunked big-integer conversion.
    Rng rng = test::testRng("rotation-odd-sizes");
    for (size_t size : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u, 65u}) {
        std::vector<uint8_t> payload(size);
        for (auto &byte : payload) {
            byte = static_cast<uint8_t>(rng.nextBelow(256));
        }
        dna::Sequence encoded = RotationCodec::encode(payload);
        EXPECT_EQ(encoded.size(), RotationCodec::encodedLength(size));
        EXPECT_LE(dna::maxHomopolymerRun(encoded), 1u);
        EXPECT_EQ(RotationCodec::decode(encoded, size), payload);
    }
}

TEST(RotationCodecEdgeTest, EmptyPayloadIsEmptySequence)
{
    dna::Sequence encoded = RotationCodec::encode({});
    EXPECT_EQ(encoded.size(), 0u);
    EXPECT_TRUE(RotationCodec::decode(encoded, 0).empty());
}

// ------------------------------------------- primer composition limits

primer::Constraints
relaxedDistances()
{
    primer::Constraints constraints;
    constraints.tm_min = 0.0;
    constraints.tm_max = 200.0;
    return constraints;
}

TEST(CompositionEdgeTest, GcBoundsAreInclusive)
{
    primer::Constraints constraints = relaxedDistances();
    // 20-mers: 9 G/C = 0.45 (on gc_min), 11 G/C = 0.55 (on gc_max),
    // 8 and 12 fall just outside.
    auto gcFraction = [](size_t gc_bases) {
        std::string bases;
        const char *gc = "GC", *at = "AT";
        for (size_t i = 0; i < 20; ++i) {
            bases += (i < gc_bases) ? gc[i % 2] : at[i % 2];
        }
        return dna::Sequence(bases);
    };
    EXPECT_TRUE(checkComposition(gcFraction(9), constraints).gc_ok);
    EXPECT_TRUE(checkComposition(gcFraction(11), constraints).gc_ok);
    EXPECT_FALSE(checkComposition(gcFraction(8), constraints).gc_ok);
    EXPECT_FALSE(checkComposition(gcFraction(12), constraints).gc_ok);
}

TEST(CompositionEdgeTest, HomopolymerLimitIsExact)
{
    primer::Constraints constraints = relaxedDistances();
    constraints.gc_min = 0.0;
    constraints.gc_max = 1.0;
    // Runs of exactly max_homopolymer pass; one longer fails.
    dna::Sequence at_limit("GGGACGTACGTACGTACGTA");
    dna::Sequence over_limit("GGGGACGTACGTACGTACGT");
    ASSERT_EQ(constraints.max_homopolymer, 3u);
    EXPECT_TRUE(checkComposition(at_limit, constraints).homopolymer_ok);
    EXPECT_FALSE(checkComposition(over_limit, constraints).homopolymer_ok);
}

// ------------------------------------------------------------ scrambler

TEST(ScramblerEdgeTest, InvolutionAcrossSizesAndStreams)
{
    Rng rng = test::testRng("scrambler-involution");
    Scrambler scrambler(rng.next());
    for (size_t size : {1u, 2u, 255u, 256u, 257u, 4096u}) {
        std::vector<uint8_t> data(size);
        for (auto &byte : data) {
            byte = static_cast<uint8_t>(rng.nextBelow(256));
        }
        for (uint64_t stream : {0u, 1u, 77u}) {
            std::vector<uint8_t> once = scrambler.applied(data, stream);
            EXPECT_EQ(scrambler.applied(once, stream), data)
                << "size " << size << " stream " << stream;
            if (size >= 256) {
                // A real keystream must actually change the buffer.
                EXPECT_NE(once, data);
            }
        }
    }
}

TEST(ScramblerEdgeTest, ScrambledOutputIsGcBalanced)
{
    // The paper's argument for unconstrained coding: after scrambling,
    // 2-bit-coded payloads are GC-balanced on average even when the
    // raw payload is maximally biased (all zero bytes -> all 'A').
    std::vector<uint8_t> zeros(4096, 0x00);
    Scrambler scrambler(test::kTestSeed);
    std::vector<uint8_t> scrambled = scrambler.applied(zeros, 0);

    std::string bases;
    const char kBaseFor[4] = {'A', 'C', 'G', 'T'};
    for (uint8_t byte : scrambled) {
        for (int shift = 6; shift >= 0; shift -= 2) {
            bases += kBaseFor[(byte >> shift) & 0x3];
        }
    }
    double gc = dna::gcContent(dna::Sequence(bases));
    EXPECT_NEAR(gc, 0.5, 0.03);
    EXPECT_LE(dna::maxHomopolymerRun(dna::Sequence(bases)), 12u);
}

} // namespace
} // namespace dnastore::codec
