/**
 * @file
 * Tests for the Section 7.4 latency models.
 */

#include <gtest/gtest.h>

#include "core/latency.h"

namespace dnastore::core {
namespace {

TEST(NgsModelTest, LatencyQuantizedInRuns)
{
    NgsModel ngs;
    ngs.reads_per_run = 1000;
    ngs.hours_per_run = 10.0;
    EXPECT_DOUBLE_EQ(ngs.latencyHours(1), 10.0);
    EXPECT_DOUBLE_EQ(ngs.latencyHours(1000), 10.0);
    EXPECT_DOUBLE_EQ(ngs.latencyHours(1001), 20.0);
    EXPECT_DOUBLE_EQ(ngs.latencyHours(9500), 100.0);
}

TEST(NgsModelTest, SmallPartitionSeesNoReduction)
{
    // Section 7.4: "for small partition sizes that fit into a single
    // sequencing run, the reduction in latency is conceptually
    // impossible".
    NgsModel ngs;
    double whole_partition = ngs.latencyHours(8850 * 30);
    double one_block = ngs.latencyHours(30 * 30);
    EXPECT_DOUBLE_EQ(whole_partition, one_block);
}

TEST(NgsModelTest, LargePartitionReducesLinearly)
{
    // The paper's 1TB example: ~1000 runs baseline vs ~1 run for a
    // block.
    NgsModel miseq;
    miseq.reads_per_run = 25e6;
    double base = miseq.latencyHours(25e9);   // 1000 runs
    double block = miseq.latencyHours(2000);  // 1 run
    EXPECT_NEAR(base / block, 1000.0, 1.0);
}

TEST(NanoporeModelTest, AlwaysLinear)
{
    NanoporeModel ont;
    ont.reads_per_hour = 1e6;
    EXPECT_DOUBLE_EQ(ont.latencyHours(1e6), 1.0);
    // Block access reduces latency by exactly the read ratio,
    // regardless of partition size (Section 7.4).
    double base = ont.latencyHours(8850 * 30);
    double block = ont.latencyHours(30 * 30 / 0.48);
    EXPECT_NEAR(base / block, 8850.0 * 0.48 / 30.0, 1.0);
}

TEST(ReadsNeededTest, ScalesWithPurity)
{
    EXPECT_DOUBLE_EQ(readsNeeded(30, 30, 1.0), 900.0);
    EXPECT_DOUBLE_EQ(readsNeeded(30, 30, 0.48), 1875.0);
    // The baseline at 0.34% useful needs ~293x more.
    EXPECT_NEAR(readsNeeded(30, 30, 0.0034) /
                    readsNeeded(30, 30, 1.0),
                294.0, 1.0);
}

} // namespace
} // namespace dnastore::core
