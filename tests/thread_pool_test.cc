/**
 * @file
 * Tests for the fork-join thread pool: completeness (every index runs
 * exactly once), determinism of parallelMap slot order, pool reuse,
 * exception propagation, the inline sequential paths, and the
 * multi-job surface (concurrent parallelFor calls from several
 * threads, nested fork-join from inside a job body) that the
 * DecodeService's cross-partition sharding builds on.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/thread_pool.h"

namespace dnastore {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount)
{
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(5), 5u);
}

TEST(ThreadPoolTest, SizeOnePoolSpawnsNoWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    size_t ran = 0;
    pool.parallelFor(10, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 10u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    const size_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, EmptyAndSingleIteration)
{
    ThreadPool pool(3);
    size_t ran = 0;
    pool.parallelFor(0, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 0u);
    // n == 1 runs inline on the caller, no cross-thread writes.
    pool.parallelFor(1, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 1u);
}

TEST(ThreadPoolTest, FewerIterationsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> counts(3);
    pool.parallelFor(3, [&](size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::vector<uint8_t> hit(97, 0);
        pool.parallelFor(hit.size(), [&](size_t i) { hit[i] = 1; });
        for (size_t i = 0; i < hit.size(); ++i)
            ASSERT_EQ(hit[i], 1) << "round " << round;
    }
}

TEST(ThreadPoolTest, ParallelMapSlotsFollowIndexOrder)
{
    ThreadPool pool(4);
    std::vector<uint64_t> out = pool.parallelMap<uint64_t>(
        1000, [](size_t i) { return uint64_t{i} * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], uint64_t{i} * i);
}

TEST(ThreadPoolTest, ParallelMapMatchesSequential)
{
    auto fn = [](size_t i) { return (uint64_t{i} * 2654435761u) ^ i; };
    ThreadPool parallel(7);
    ThreadPool sequential(1);
    EXPECT_EQ(parallel.parallelMap<uint64_t>(5000, fn),
              sequential.parallelMap<uint64_t>(5000, fn));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(1000,
                                  [](size_t i) {
                                      if (i == 137)
                                          fatal("boom at ", i);
                                  }),
                 FatalError);
    // The pool survives a failed job.
    std::vector<uint8_t> hit(10, 0);
    pool.parallelFor(hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ConcurrentJobsFromMultipleSubmitters)
{
    // Several threads fork jobs on one shared pool at once; every
    // job must complete exactly its own index set.
    ThreadPool pool(4);
    constexpr size_t kSubmitters = 6;
    constexpr size_t kRounds = 20;
    constexpr size_t kIndices = 257;
    std::vector<std::vector<std::atomic<int>>> counts(kSubmitters);
    for (auto &slot : counts)
        slot = std::vector<std::atomic<int>>(kIndices);

    std::vector<std::thread> submitters;
    for (size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (size_t round = 0; round < kRounds; ++round) {
                pool.parallelFor(kIndices, [&, s](size_t i) {
                    counts[s][i].fetch_add(
                        1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    for (size_t s = 0; s < kSubmitters; ++s) {
        for (size_t i = 0; i < kIndices; ++i) {
            ASSERT_EQ(counts[s][i].load(),
                      static_cast<int>(kRounds))
                << "submitter " << s << " index " << i;
        }
    }
}

TEST(ThreadPoolTest, NestedParallelForOnSamePool)
{
    // A job body forking on its own pool is the DecodeService
    // sharding pattern: outer = per-partition jobs, inner = decode
    // stages. Every (outer, inner) pair must run exactly once.
    ThreadPool pool(4);
    constexpr size_t kOuter = 12;
    constexpr size_t kInner = 64;
    std::vector<std::vector<std::atomic<int>>> counts(kOuter);
    for (auto &slot : counts)
        slot = std::vector<std::atomic<int>>(kInner);

    pool.parallelFor(kOuter, [&](size_t o) {
        pool.parallelFor(kInner, [&, o](size_t i) {
            counts[o][i].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (size_t o = 0; o < kOuter; ++o)
        for (size_t i = 0; i < kInner; ++i)
            ASSERT_EQ(counts[o][i].load(), 1)
                << "outer " << o << " inner " << i;
}

TEST(ThreadPoolTest, NestedExceptionReachesOuterBody)
{
    // An inner job's failure rethrows inside the outer body; when the
    // outer body lets it escape, the outer caller sees it, and jobs
    // that already ran are unaffected.
    ThreadPool pool(3);
    std::atomic<int> clean_outers{0};
    EXPECT_THROW(
        pool.parallelFor(8,
                         [&](size_t o) {
                             pool.parallelFor(16, [&](size_t i) {
                                 if (o == 3 && i == 7)
                                     fatal("inner boom");
                             });
                             clean_outers.fetch_add(
                                 1, std::memory_order_relaxed);
                         }),
        FatalError);
    EXPECT_LT(clean_outers.load(), 8);

    // The pool stays serviceable after the nested failure.
    std::vector<uint8_t> hit(40, 0);
    pool.parallelFor(hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ConcurrentJobFailureIsIsolated)
{
    // One submitter's exception must not leak into a concurrent
    // submitter's job on the same pool.
    ThreadPool pool(4);
    for (int round = 0; round < 10; ++round) {
        std::vector<std::atomic<int>> counts(300);
        std::thread failing([&] {
            EXPECT_THROW(pool.parallelFor(300,
                                          [](size_t i) {
                                              if (i == 100)
                                                  fatal("boom");
                                          }),
                         FatalError);
        });
        pool.parallelFor(counts.size(), [&](size_t i) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
        });
        failing.join();
        for (size_t i = 0; i < counts.size(); ++i)
            ASSERT_EQ(counts[i].load(), 1) << "round " << round;
    }
}

TEST(ThreadPoolTest, NullPoolHelperRunsInline)
{
    std::vector<uint8_t> hit(25, 0);
    parallelFor(nullptr, hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);

    ThreadPool pool(2);
    std::fill(hit.begin(), hit.end(), 0);
    parallelFor(&pool, hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);
}

} // namespace
} // namespace dnastore
