/**
 * @file
 * Tests for the fork-join thread pool: completeness (every index runs
 * exactly once), determinism of parallelMap slot order, pool reuse,
 * exception propagation, and the inline sequential paths.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/thread_pool.h"

namespace dnastore {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount)
{
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(5), 5u);
}

TEST(ThreadPoolTest, SizeOnePoolSpawnsNoWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    size_t ran = 0;
    pool.parallelFor(10, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 10u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    const size_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, EmptyAndSingleIteration)
{
    ThreadPool pool(3);
    size_t ran = 0;
    pool.parallelFor(0, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 0u);
    // n == 1 runs inline on the caller, no cross-thread writes.
    pool.parallelFor(1, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 1u);
}

TEST(ThreadPoolTest, FewerIterationsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> counts(3);
    pool.parallelFor(3, [&](size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::vector<uint8_t> hit(97, 0);
        pool.parallelFor(hit.size(), [&](size_t i) { hit[i] = 1; });
        for (size_t i = 0; i < hit.size(); ++i)
            ASSERT_EQ(hit[i], 1) << "round " << round;
    }
}

TEST(ThreadPoolTest, ParallelMapSlotsFollowIndexOrder)
{
    ThreadPool pool(4);
    std::vector<uint64_t> out = pool.parallelMap<uint64_t>(
        1000, [](size_t i) { return uint64_t{i} * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], uint64_t{i} * i);
}

TEST(ThreadPoolTest, ParallelMapMatchesSequential)
{
    auto fn = [](size_t i) { return (uint64_t{i} * 2654435761u) ^ i; };
    ThreadPool parallel(7);
    ThreadPool sequential(1);
    EXPECT_EQ(parallel.parallelMap<uint64_t>(5000, fn),
              sequential.parallelMap<uint64_t>(5000, fn));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(1000,
                                  [](size_t i) {
                                      if (i == 137)
                                          fatal("boom at ", i);
                                  }),
                 FatalError);
    // The pool survives a failed job.
    std::vector<uint8_t> hit(10, 0);
    pool.parallelFor(hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, NullPoolHelperRunsInline)
{
    std::vector<uint8_t> hit(25, 0);
    parallelFor(nullptr, hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);

    ThreadPool pool(2);
    std::fill(hit.begin(), hit.end(), 0);
    parallelFor(&pool, hit.size(), [&](size_t i) { hit[i] = 1; });
    for (uint8_t h : hit)
        EXPECT_EQ(h, 1);
}

} // namespace
} // namespace dnastore
