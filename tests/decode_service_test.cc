/**
 * @file
 * DecodeService contract tests.
 *
 * Determinism: a batch outcome must be byte-identical to sequential
 * Decoder::decodeAll for every service thread count and for any
 * submission order or interleaving — the service only adds
 * scheduling, never changes a result.
 *
 * Lifecycle: submissions after shutdown are rejected, an exception in
 * one partition's job surfaces only through that job's future, and
 * the destructor drains (decodes, not drops) everything queued.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/decode_service.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

/** Three partitions with distinct primer pairs and seeds, each
 *  holding its own 5-block corpus, plus seeded noisy reads and the
 *  sequential golden outcome per partition. */
class DecodeServiceTest : public ::testing::Test
{
  protected:
    static constexpr size_t kPartitions = 3;
    static constexpr size_t kBlocks = 5;
    static constexpr size_t kCoverage = 18;

    std::vector<std::unique_ptr<Partition>> partitions_;
    std::vector<std::unique_ptr<Decoder>> decoders_;
    std::vector<std::vector<sim::Read>> reads_;
    std::vector<DecodeOutcome> golden_;

    void
    SetUp() override
    {
        for (size_t p = 0; p < kPartitions; ++p) {
            const test::PrimerPair &primers = test::primerPair(p);
            partitions_.push_back(std::make_unique<Partition>(
                test::partitionConfig(p), primers.forward,
                primers.reverse, static_cast<uint32_t>(13 + p)));

            Bytes data = test::corpusBlocks(kBlocks, test::kTestSeed + p);
            sim::SynthesisParams synthesis;
            synthesis.seed = 1000 + p;
            sim::Pool pool = sim::synthesize(
                partitions_[p]->encodeFile(data), synthesis);

            sim::SequencerParams sequencer;
            sequencer.sub_rate = 0.01;
            sequencer.ins_rate = 0.002;
            sequencer.del_rate = 0.002;
            sequencer.seed = 3 + 131 * p;
            reads_.push_back(sim::sequencePool(
                pool, kBlocks * partitions_[p]->config().rs_n * kCoverage,
                sequencer));

            DecoderParams params;
            params.threads = 1;
            decoders_.push_back(
                std::make_unique<Decoder>(*partitions_[p], params));

            DecodeOutcome outcome;
            outcome.units =
                decoders_[p]->decodeAll(reads_[p], &outcome.stats);
            EXPECT_EQ(outcome.stats.units_decoded, kBlocks);
            golden_.push_back(std::move(outcome));
        }
    }

    std::vector<DecodeRequest>
    fullBatch() const
    {
        std::vector<DecodeRequest> batch(kPartitions);
        for (size_t p = 0; p < kPartitions; ++p) {
            batch[p].decoder = decoders_[p].get();
            batch[p].reads = reads_[p];
        }
        return batch;
    }
};

TEST_F(DecodeServiceTest, BatchMatchesSequentialDecodeAcrossThreadCounts)
{
    for (size_t threads : {1u, 2u, 8u}) {
        DecodeServiceParams params;
        params.threads = threads;
        DecodeService service(params);
        EXPECT_EQ(service.threadCount(), threads);

        std::vector<std::future<DecodeOutcome>> futures =
            service.submitBatch(fullBatch());
        ASSERT_EQ(futures.size(), kPartitions);
        for (size_t p = 0; p < kPartitions; ++p) {
            DecodeOutcome outcome = futures[p].get();
            EXPECT_EQ(outcome.units, golden_[p].units)
                << "threads=" << threads << " partition=" << p;
            EXPECT_EQ(outcome.stats, golden_[p].stats)
                << "threads=" << threads << " partition=" << p;
        }
    }
}

TEST_F(DecodeServiceTest, SubmissionOrderDoesNotChangeResults)
{
    DecodeServiceParams params;
    params.threads = 4;
    DecodeService service(params);

    // Out-of-order single submissions, then an interleaved second
    // round before the first round's futures are consumed.
    std::vector<std::future<DecodeOutcome>> first(kPartitions);
    for (size_t p = kPartitions; p-- > 0;)
        first[p] = service.submit(*decoders_[p], reads_[p]);
    std::vector<std::future<DecodeOutcome>> second =
        service.submitBatch(fullBatch());

    for (size_t p = 0; p < kPartitions; ++p) {
        EXPECT_EQ(first[p].get(), golden_[p]) << "partition " << p;
        EXPECT_EQ(second[p].get(), golden_[p]) << "partition " << p;
    }
}

TEST_F(DecodeServiceTest, ConcurrentSubmittersGetTheirOwnResults)
{
    DecodeServiceParams params;
    params.threads = 4;
    DecodeService service(params);

    constexpr size_t kRounds = 3;
    std::vector<std::vector<std::future<DecodeOutcome>>> futures(
        kPartitions);
    std::vector<std::thread> submitters;
    for (size_t p = 0; p < kPartitions; ++p) {
        futures[p].resize(kRounds);
        submitters.emplace_back([&, p] {
            for (size_t round = 0; round < kRounds; ++round) {
                futures[p][round] =
                    service.submit(*decoders_[p], reads_[p]);
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();

    for (size_t p = 0; p < kPartitions; ++p)
        for (size_t round = 0; round < kRounds; ++round)
            EXPECT_EQ(futures[p][round].get(), golden_[p])
                << "partition " << p << " round " << round;
}

TEST_F(DecodeServiceTest, SubmitAfterShutdownIsRejected)
{
    DecodeServiceParams params;
    params.threads = 2;
    DecodeService service(params);
    std::future<DecodeOutcome> accepted =
        service.submit(*decoders_[0], reads_[0]);
    service.shutdown();

    EXPECT_THROW(service.submit(*decoders_[1], reads_[1]), FatalError);
    EXPECT_THROW(service.submitBatch(fullBatch()), FatalError);
    // Work accepted before shutdown still delivered.
    EXPECT_EQ(accepted.get(), golden_[0]);
    // shutdown is idempotent.
    service.shutdown();
}

TEST_F(DecodeServiceTest, ExceptionInOneJobDoesNotPoisonSiblings)
{
    DecodeServiceParams params;
    params.threads = 4;
    DecodeService service(params);

    std::vector<DecodeRequest> batch = fullBatch();
    batch[1].decoder = nullptr;  // this job must fail alone
    std::vector<std::future<DecodeOutcome>> futures =
        service.submitBatch(std::move(batch));

    EXPECT_EQ(futures[0].get(), golden_[0]);
    EXPECT_THROW(futures[1].get(), FatalError);
    EXPECT_EQ(futures[2].get(), golden_[2]);

    // The service keeps serving after a failed job.
    EXPECT_EQ(service.submit(*decoders_[1], reads_[1]).get(),
              golden_[1]);
}

TEST_F(DecodeServiceTest, DestructorDrainsPendingQueue)
{
    constexpr size_t kBatches = 3;
    std::vector<std::vector<std::future<DecodeOutcome>>> futures;
    {
        DecodeServiceParams params;
        params.threads = 2;
        DecodeService service(params);
        for (size_t b = 0; b < kBatches; ++b)
            futures.push_back(service.submitBatch(fullBatch()));
        // Destruction races the dispatcher: whatever is still queued
        // must be decoded, not dropped.
    }
    for (size_t b = 0; b < kBatches; ++b) {
        for (size_t p = 0; p < kPartitions; ++p) {
            ASSERT_EQ(futures[b][p].wait_for(std::chrono::seconds(0)),
                      std::future_status::ready)
                << "batch " << b << " partition " << p;
            EXPECT_EQ(futures[b][p].get(), golden_[p])
                << "batch " << b << " partition " << p;
        }
    }
}

TEST_F(DecodeServiceTest, EmptyBatchAndEmptyReads)
{
    DecodeService service;
    EXPECT_TRUE(service.submitBatch({}).empty());

    std::future<DecodeOutcome> future =
        service.submit(*decoders_[0], {});
    DecodeOutcome outcome = future.get();
    EXPECT_EQ(outcome.status, DecodeStatus::Ok);
    EXPECT_TRUE(outcome.units.empty());
    EXPECT_EQ(outcome.stats.reads_in, 0u);
    EXPECT_EQ(outcome.stats.units_decoded, 0u);
}

TEST_F(DecodeServiceTest, EmptyReadsRequestInsideBatch)
{
    DecodeService service;
    std::vector<DecodeRequest> batch(2);
    batch[0].decoder = decoders_[0].get();
    batch[0].reads = reads_[0];
    batch[1].decoder = decoders_[1].get();
    batch[1].reads = {};  // legal: decodes to an empty outcome

    std::vector<std::future<DecodeOutcome>> futures =
        service.submitBatch(std::move(batch));
    EXPECT_EQ(futures[0].get(), golden_[0]);
    DecodeOutcome empty = futures[1].get();
    EXPECT_EQ(empty.status, DecodeStatus::Ok);
    EXPECT_TRUE(empty.units.empty());
    EXPECT_EQ(empty.stats.reads_in, 0u);
}

TEST_F(DecodeServiceTest, RejectPolicyShedsAtDepthOne)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 1;
    params.overflow = OverflowPolicy::Reject;
    params.metrics = &registry;
    DecodeService service(params);

    // Occupy the only queue slot: the admitted request counts as
    // in-flight until its future is fulfilled, so the next submit is
    // shed deterministically while this decode runs.
    std::future<DecodeOutcome> admitted =
        service.submit(*decoders_[0], reads_[0]);
    std::future<DecodeOutcome> shed =
        service.submit(*decoders_[1], reads_[1]);

    DecodeOutcome overloaded = shed.get();
    EXPECT_EQ(overloaded.status, DecodeStatus::Overloaded);
    EXPECT_TRUE(overloaded.units.empty());
    EXPECT_EQ(overloaded.stats, DecodeStats{});

    // The shed request never perturbs the admitted one...
    EXPECT_EQ(admitted.get(), golden_[0]);
    // ...and once it resolves, the slot is free again.
    EXPECT_EQ(service.submit(*decoders_[1], reads_[1]).get(),
              golden_[1]);

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("decode_service.requests_submitted"),
              2u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_rejected"),
              1u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_decoded"),
              2u);
    EXPECT_EQ(snap.gauges.at("decode_service.queue_depth"), 0);
}

TEST_F(DecodeServiceTest, BlockPolicyBlocksUntilSpaceFrees)
{
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 1;
    params.overflow = OverflowPolicy::Block;
    DecodeService service(params);

    std::future<DecodeOutcome> first =
        service.submit(*decoders_[0], reads_[0]);
    // This submit must block until the first request completes and
    // frees the only slot (space is released just before the promise
    // fires, so `first` is ready at most instants later).
    std::future<DecodeOutcome> second =
        service.submit(*decoders_[1], reads_[1]);
    EXPECT_EQ(first.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);

    EXPECT_EQ(first.get(), golden_[0]);
    EXPECT_EQ(second.get(), golden_[1]);
}

TEST_F(DecodeServiceTest, BatchLargerThanDepthThrows)
{
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 2;
    DecodeService service(params);
    EXPECT_THROW(service.submitBatch(fullBatch()), FatalError);
    // A fitting batch still goes through afterwards.
    EXPECT_EQ(service.submit(*decoders_[0], reads_[0]).get(),
              golden_[0]);
}

TEST_F(DecodeServiceTest, ShutdownUnblocksBlockedSubmitter)
{
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 1;
    params.overflow = OverflowPolicy::Block;
    DecodeService service(params);

    std::future<DecodeOutcome> admitted =
        service.submit(*decoders_[0], reads_[0]);

    // The contract under test: a submitter parked on the full queue
    // must never hang across shutdown — it either fails with
    // FatalError (woken by shutdown) or, if the first decode already
    // freed the slot, is admitted and fully served. A hang would
    // trip the suite timeout.
    std::atomic<bool> submitter_failed{false};
    std::future<DecodeOutcome> late;
    std::thread submitter([&] {
        try {
            late = service.submit(*decoders_[1], reads_[1]);
        } catch (const FatalError &) {
            submitter_failed = true;
        }
    });
    // Give the submitter time to park on the full queue, then shut
    // down while the first decode is (almost certainly) still busy.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    service.shutdown();
    submitter.join();

    if (!submitter_failed) {
        EXPECT_EQ(late.get(), golden_[1]);  // admitted before shutdown
    }
    EXPECT_EQ(admitted.get(), golden_[0]);  // drained, not dropped
}

TEST_F(DecodeServiceTest, BlockedSubmittersAdmitInArrivalOrder)
{
    // The ticketed-wait contract: submitters parked on a full queue
    // are admitted strictly in the order they arrived. Before the
    // ticket fix, space_cv was a notify_all lottery — any parked
    // submitter could win the freed slot, so this ordering held only
    // by luck. Admission order is observed through the service's own
    // dispatch observer (at depth 1 a request must be dispatched
    // before the next can be admitted, so dispatch order IS
    // admission order, recorded race-free in the dispatcher thread).
    telemetry::MetricsRegistry registry;
    std::mutex order_mutex;
    std::vector<TenantId> dispatch_order;
    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 1;
    params.overflow = OverflowPolicy::Block;
    params.metrics = &registry;
    params.on_dispatch = [&](TenantId tenant, size_t) {
        std::lock_guard<std::mutex> lock(order_mutex);
        dispatch_order.push_back(tenant);
    };
    DecodeService service(params);
    telemetry::Counter &submitted =
        registry.counter("decode_service.requests_submitted");

    // A real decode holds the only slot long enough to park the
    // waiters below (each waiter's own request is an empty read set,
    // so admissions resolve quickly once the slot cycles).
    std::future<DecodeOutcome> occupier =
        service.submit(*decoders_[0], reads_[0]);

    constexpr size_t kWaiters = 3;
    std::vector<std::thread> waiters;
    for (size_t w = 0; w < kWaiters; ++w) {
        // Waiter w submits as tenant w + 1 so the dispatch record
        // identifies it (single-request queues at depth 1 make WDRR
        // order degenerate to admission order).
        waiters.emplace_back([&, w] {
            EXPECT_EQ(service
                          .submit(*decoders_[w], {},
                                  static_cast<TenantId>(w + 1))
                          .get()
                          .status,
                      DecodeStatus::Ok);
        });
        // Park each waiter (ticket taken) before starting the next,
        // so arrival order is exactly w = 0, 1, 2. If the occupier
        // finishes early a waiter is admitted instead of parked —
        // the submitted counter then makes progress and the ordering
        // assertion below still holds; the deadline keeps a lost
        // wakeup from hanging the suite.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
        while (service.blockedSubmitters() < w + 1 &&
               submitted.value() < 2 + w &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
        }
    }
    for (std::thread &waiter : waiters)
        waiter.join();
    EXPECT_EQ(occupier.get(), golden_[0]);

    std::lock_guard<std::mutex> lock(order_mutex);
    EXPECT_EQ(dispatch_order,
              (std::vector<TenantId>{0, 1, 2, 3}));
}

TEST_F(DecodeServiceTest, DecoderDestroyedWhileQueuedIsCaught)
{
    DecodeServiceParams params;
    params.threads = 2;
    DecodeService service(params);

    // Keep the dispatcher busy so the doomed request stays queued.
    std::future<DecodeOutcome> busy =
        service.submit(*decoders_[0], reads_[0]);

    DecoderParams decoder_params;
    decoder_params.threads = 1;
    auto doomed = std::make_unique<Decoder>(*partitions_[1],
                                            decoder_params);
    std::future<DecodeOutcome> orphan =
        service.submit(*doomed, reads_[1]);
    doomed.reset();  // destroyed before its request ran

    EXPECT_THROW(orphan.get(), FatalError);
    EXPECT_EQ(busy.get(), golden_[0]);
    // The service survives the caught lifetime bug.
    EXPECT_EQ(service.submit(*decoders_[1], reads_[1]).get(),
              golden_[1]);
}

TEST_F(DecodeServiceTest, LatencyHistogramsCountEveryRequest)
{
    // The latency values are wall-clock, but the *accounting* is
    // deterministic for every service thread count: one histogram
    // observation per request on both histograms, counters matching,
    // and the queue-depth gauge back at zero once futures resolve.
    for (size_t threads : {1u, 2u, 8u}) {
        telemetry::MetricsRegistry registry;
        DecodeServiceParams params;
        params.threads = threads;
        params.metrics = &registry;
        DecodeService service(params);

        std::vector<std::future<DecodeOutcome>> futures =
            service.submitBatch(fullBatch());
        for (size_t p = 0; p < kPartitions; ++p)
            EXPECT_EQ(futures[p].get(), golden_[p])
                << "threads=" << threads;

        telemetry::MetricsSnapshot snap = registry.snapshot();
        EXPECT_EQ(
            snap.counters.at("decode_service.batches_submitted"), 1u);
        EXPECT_EQ(
            snap.counters.at("decode_service.requests_submitted"),
            kPartitions);
        EXPECT_EQ(
            snap.counters.at("decode_service.requests_decoded"),
            kPartitions);
        EXPECT_EQ(snap.histograms.at("decode_service.queue_latency_us")
                      .count,
                  kPartitions)
            << "threads=" << threads;
        EXPECT_EQ(
            snap.histograms.at("decode_service.decode_latency_us")
                .count,
            kPartitions)
            << "threads=" << threads;
        EXPECT_EQ(snap.gauges.at("decode_service.queue_depth"), 0);
        EXPECT_EQ(snap.gauges.at("decode_service.pool_threads"),
                  static_cast<int64_t>(threads));
    }
}

TEST_F(DecodeServiceTest, TenantInstrumentCreationDoesNotRaceExport)
{
    // Regression pin: first sighting of a non-default tenant creates
    // its instruments in the metrics registry. That creation used to
    // run with the service mutex held, ordering service-mutex →
    // registry-mutex against exporters that take only the registry
    // mutex; the creation now happens with the service lock dropped,
    // so concurrent snapshot()/exportText() never contends with
    // admission. Repeated so TSan gets many first-sighting windows;
    // a reintroduced lock-order inversion shows up as a TSan report
    // or a suite-timeout deadlock.
    for (int iteration = 0; iteration < 20; ++iteration) {
        telemetry::MetricsRegistry registry;
        DecodeServiceParams params;
        params.threads = 2;
        params.metrics = &registry;
        DecodeService service(params);

        std::atomic<bool> stop{false};
        std::thread exporter([&] {
            while (!stop.load(std::memory_order_relaxed))
                registry.exportText();
        });

        constexpr size_t kSubmitters = 4;
        std::vector<std::future<DecodeOutcome>> futures(kSubmitters);
        std::vector<std::thread> submitters;
        for (size_t s = 0; s < kSubmitters; ++s) {
            // Each submitter is its tenant's first sighting: the
            // empty read set keeps the decode itself trivial.
            submitters.emplace_back([&, s] {
                futures[s] = service.submit(
                    *decoders_[0], {},
                    static_cast<TenantId>(100 * iteration + s + 1));
            });
        }
        for (std::thread &submitter : submitters)
            submitter.join();
        for (std::future<DecodeOutcome> &future : futures)
            EXPECT_EQ(future.get().status, DecodeStatus::Ok);
        stop.store(true, std::memory_order_relaxed);
        exporter.join();

        telemetry::MetricsSnapshot snap = registry.snapshot();
        for (size_t s = 0; s < kSubmitters; ++s) {
            const std::string prefix =
                "decode_service.tenant." +
                std::to_string(100 * iteration + s + 1) + ".";
            EXPECT_EQ(snap.counters.at(prefix + "requests_admitted"),
                      1u);
            EXPECT_EQ(snap.counters.at(prefix + "requests_rejected"),
                      0u);
        }
    }
}

} // namespace
} // namespace dnastore::core
