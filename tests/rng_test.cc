/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace dnastore {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowZeroBoundPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.nextBelow(0), PanicError);
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(17);
    const int n = 20000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian();
        sum += v;
        sum_sq += v * v;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.nextLogNormal(0.0, 0.5), 0.0);
}

TEST(RngTest, BernoulliProbability)
{
    Rng rng(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMean)
{
    Rng rng(29);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextPoisson(4.0));
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, PoissonLargeLambdaUsesNormalApprox)
{
    Rng rng(31);
    const int n = 5000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextPoisson(100.0));
    EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(37);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::multiset<int> a(items.begin(), items.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

TEST(RngTest, DeriveStreamIndependence)
{
    Rng a = Rng::deriveStream(42, "synthesis");
    Rng b = Rng::deriveStream(42, "sequencer");
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(RngTest, DeriveSeedIsDeterministic)
{
    EXPECT_EQ(Rng::deriveSeed(5, 9), Rng::deriveSeed(5, 9));
    EXPECT_NE(Rng::deriveSeed(5, 9), Rng::deriveSeed(5, 10));
    EXPECT_NE(Rng::deriveSeed(5, 9), Rng::deriveSeed(6, 9));
}

TEST(RngTest, Fnv1aDistinguishesStrings)
{
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
}

} // namespace
} // namespace dnastore
