/**
 * @file
 * Request-scoped tracing tests.
 *
 * Unit level: sampling verdicts (head counter, keep() tail flag, slow
 * threshold), ring eviction, and byte-exact golden pins of both
 * exporters on a hand-scripted trace under a manual clock.
 *
 * Service level: a traced DecodeService must produce one request root
 * per submission whose children cover admission → queue → decode →
 * every decode stage; requests shed by OverflowPolicy::Reject or a
 * tenant token bucket must record their time-in-admission in
 * decode_service.rejected_latency_us; histogram exemplars must
 * resolve to a retrievable trace for a scripted slow request; and
 * streaming sessions must hang chunk spans off one stream root.
 *
 * Simulator level: a virtual-clock replay with tracing on exports
 * byte-identical text across runs and across service thread counts
 * (the golden-pin contract), annotates the SLO report with each
 * tenant's slowest kept trace, and a sampling-off replay leaves no
 * collector at all.
 */

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/decode_service.h"
#include "core/decoder.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/simulator.h"
#include "workload/trace.h"

namespace dnastore::telemetry {
namespace {

size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/** Names of all spans in a trace. */
std::multiset<std::string>
spanNames(const FinishedTrace &trace)
{
    std::multiset<std::string> names;
    for (const Span &span : trace.spans)
        names.insert(span.name);
    return names;
}

/** Parentage invariants: exactly one root, every parent id resolves,
 *  and every span is reachable from the root (i.e. the root is an
 *  ancestor of every stage span). */
testing::AssertionResult
wellFormedTree(const FinishedTrace &trace)
{
    std::map<SpanId, const Span *> by_id;
    size_t roots = 0;
    for (const Span &span : trace.spans) {
        if (span.id == kNoSpan)
            return testing::AssertionFailure()
                   << "trace " << trace.id << ": span id 0";
        if (!by_id.emplace(span.id, &span).second)
            return testing::AssertionFailure()
                   << "trace " << trace.id << ": duplicate span id "
                   << span.id;
        roots += span.parent == kNoSpan ? 1 : 0;
    }
    if (roots != 1)
        return testing::AssertionFailure()
               << "trace " << trace.id << ": " << roots << " roots";
    for (const Span &span : trace.spans) {
        if (span.end_us < span.start_us)
            return testing::AssertionFailure()
                   << "trace " << trace.id << " span " << span.name
                   << ": ends before it starts";
        // Walk to the root: every span must reach it without a cycle.
        size_t hops = 0;
        SpanId at = span.parent;
        while (at != kNoSpan) {
            auto it = by_id.find(at);
            if (it == by_id.end())
                return testing::AssertionFailure()
                       << "trace " << trace.id << " span " << span.name
                       << ": dangling parent " << at;
            at = it->second->parent;
            if (++hops > trace.spans.size())
                return testing::AssertionFailure()
                       << "trace " << trace.id << ": parent cycle";
        }
    }
    return testing::AssertionSuccess();
}

TEST(TraceCollectorTest, AllSamplingOffMintsInactiveHandles)
{
    TraceCollectorConfig config;
    config.sample_every = 0;
    config.keep_errors = false;
    config.slow_threshold_us = 0;
    TraceCollector collector(config);

    SpanHandle root = collector.startTrace("request", 1);
    EXPECT_FALSE(root.active());
    root.attrU64("tenant", 1);  // all no-ops
    TraceContext ctx = root.context();
    EXPECT_FALSE(ctx.active());
    EXPECT_EQ(ctx.traceId(), 0u);
    SpanHandle child = ctx.span("decode");
    EXPECT_FALSE(child.active());
    child.end();
    root.end();

    EXPECT_EQ(collector.traceCount(), 0u);
    EXPECT_TRUE(collector.exportText().empty());
}

TEST(TraceCollectorTest, HeadSamplingKeepsEveryNthPerTenant)
{
    TraceCollectorConfig config;
    config.sample_every = 2;
    config.keep_errors = false;
    config.clock_us = [] { return uint64_t{0}; };
    TraceCollector collector(config);

    for (int i = 0; i < 4; ++i)
        collector.startTrace("request", 1).end();
    // A second tenant has its own ordinal counter: its first trace is
    // kept even though the global ordinal would skip it.
    collector.startTrace("request", 2).end();

    std::vector<FinishedTrace> kept = collector.traces();
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[0].id, 1u);
    EXPECT_EQ(kept[1].id, 3u);
    EXPECT_EQ(kept[2].id, 5u);
    EXPECT_EQ(kept[2].tenant, 2u);
}

TEST(TraceCollectorTest, KeepFlagAndSlowThresholdAreTailTriggers)
{
    uint64_t now = 0;
    TraceCollectorConfig config;
    config.sample_every = 0;  // head sampling off; tail triggers only
    config.keep_errors = true;
    config.slow_threshold_us = 100;
    config.clock_us = [&now] { return now; };
    TraceCollector collector(config);

    // Fast and unflagged: dropped at deposit.
    collector.startTrace("request", 1).end();
    EXPECT_EQ(collector.traceCount(), 0u);

    // keep() (error path) retains a fast trace.
    {
        SpanHandle root = collector.startTrace("request", 1);
        root.context().keep();
        root.end();
    }
    EXPECT_EQ(collector.traceCount(), 1u);

    // A root at/above the slow threshold retains itself.
    {
        SpanHandle root = collector.startTrace("request", 1);
        now += 100;
        root.end();
    }
    EXPECT_EQ(collector.traceCount(), 2u);
}

TEST(TraceCollectorTest, RingEvictsOldestAtCapacity)
{
    TraceCollectorConfig config;
    config.capacity = 2;
    config.clock_us = [] { return uint64_t{0}; };
    TraceCollector collector(config);

    for (int i = 0; i < 3; ++i)
        collector.startTrace("request", 1).end();

    EXPECT_EQ(collector.traceCount(), 2u);
    EXPECT_FALSE(collector.findTrace(1).has_value());
    EXPECT_TRUE(collector.findTrace(2).has_value());
    EXPECT_TRUE(collector.findTrace(3).has_value());

    collector.clear();
    EXPECT_EQ(collector.traceCount(), 0u);
}

/** One scripted trace under a manual clock; both exporters are pinned
 *  byte-exactly — these strings are the interchange contract. */
TEST(TraceCollectorTest, GoldenExports)
{
    uint64_t now = 0;
    TraceCollectorConfig config;
    config.clock_us = [&now] { return now; };
    TraceCollector collector(config);

    SpanHandle root = collector.startTrace("request", 7);
    root.attrU64("tenant", 7);
    TraceContext ctx = root.context();

    SpanHandle admission = ctx.spanAt("admission", 2);
    admission.attr("outcome", "admitted");
    admission.endAt(10);

    now = 40;
    SpanHandle decode = ctx.span("decode");
    decode.attrU64("reads", 120);
    TraceContext decode_ctx = decode.context();
    now = 55;
    decode_ctx.event("decode.early_termination");
    now = 60;
    decode.end();

    now = 75;
    root.attr("outcome", "ok");
    root.end();

    EXPECT_EQ(collector.exportText(),
              "trace 1 tenant=7 spans=4\n"
              "  request start=0 dur=75 tenant=7 outcome=ok\n"
              "    admission start=2 dur=8 outcome=admitted\n"
              "    decode start=40 dur=20 reads=120\n"
              "      decode.early_termination start=55 dur=0\n");

    EXPECT_EQ(
        collector.exportChromeJson(),
        "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
        "{\"name\": \"request\", \"ph\": \"X\", \"ts\": 0, "
        "\"dur\": 75, \"pid\": 7, \"tid\": 1, "
        "\"args\": {\"tenant\": \"7\", \"outcome\": \"ok\"}},\n"
        "{\"name\": \"admission\", \"ph\": \"X\", \"ts\": 2, "
        "\"dur\": 8, \"pid\": 7, \"tid\": 1, "
        "\"args\": {\"outcome\": \"admitted\"}},\n"
        "{\"name\": \"decode\", \"ph\": \"X\", \"ts\": 40, "
        "\"dur\": 20, \"pid\": 7, \"tid\": 1, "
        "\"args\": {\"reads\": \"120\"}},\n"
        "{\"name\": \"decode.early_termination\", \"ph\": \"X\", "
        "\"ts\": 55, \"dur\": 0, \"pid\": 7, \"tid\": 1}\n"
        "]}\n");
}

/** One partition with noisy reads, decoded through traced services. */
class ServiceTraceTest : public ::testing::Test
{
  protected:
    static constexpr size_t kBlocks = 4;
    static constexpr size_t kCoverage = 18;

    std::unique_ptr<core::Partition> partition_;
    std::unique_ptr<core::Decoder> decoder_;
    std::vector<sim::Read> reads_;

    void
    SetUp() override
    {
        const test::PrimerPair &primers = test::primerPair(0);
        partition_ = std::make_unique<core::Partition>(
            test::partitionConfig(0), primers.forward,
            primers.reverse, 13);
        core::Bytes data = test::corpusBlocks(kBlocks);
        sim::SynthesisParams synthesis;
        synthesis.seed = 1000;
        sim::Pool pool =
            sim::synthesize(partition_->encodeFile(data), synthesis);
        sim::SequencerParams sequencer;
        sequencer.sub_rate = 0.01;
        sequencer.ins_rate = 0.002;
        sequencer.del_rate = 0.002;
        sequencer.seed = 3;
        reads_ = sim::sequencePool(
            pool, kBlocks * partition_->config().rs_n * kCoverage,
            sequencer);
        core::DecoderParams params;
        params.threads = 1;
        decoder_ =
            std::make_unique<core::Decoder>(*partition_, params);
    }
};

TEST_F(ServiceTraceTest, RequestSpansCoverEveryDecodeStage)
{
    TraceCollector collector;
    core::DecodeServiceParams params;
    params.threads = 2;
    params.tracer = &collector;
    core::DecodeService service(params);

    core::DecodeOutcome outcome =
        service.submit(*decoder_, reads_).get();
    EXPECT_EQ(outcome.status, core::DecodeStatus::Ok);

    ASSERT_EQ(collector.traceCount(), 1u);
    const FinishedTrace trace = collector.traces().front();
    EXPECT_TRUE(wellFormedTree(trace));

    const std::multiset<std::string> names = spanNames(trace);
    EXPECT_EQ(names.count("request"), 1u);
    EXPECT_EQ(names.count("admission"), 1u);
    EXPECT_EQ(names.count("queue"), 1u);
    EXPECT_EQ(names.count("decode"), 1u);
    EXPECT_EQ(names.count("decode.primer_filter"), 1u);
    EXPECT_EQ(names.count("decode.cluster"), 1u);
    EXPECT_EQ(names.count("decode.consensus"), 1u);
    // One RS-decode span per attempted unit, and every recovered
    // unit was attempted.
    EXPECT_GE(names.count("decode.rs_unit"),
              outcome.stats.units_decoded);
    EXPECT_GT(names.count("decode.rs_unit"), 0u);

    // The root carries the outcome verdict.
    const Span *root = nullptr;
    for (const Span &span : trace.spans)
        if (span.parent == kNoSpan)
            root = &span;
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "request");
    bool ok_outcome = false;
    for (const SpanAttr &attr : root->attrs)
        ok_outcome |= attr.key == "outcome" && attr.value == "ok";
    EXPECT_TRUE(ok_outcome);
}

TEST_F(ServiceTraceTest, ShedRequestsRecordAdmissionLatency)
{
    uint64_t now = 0;
    telemetry::MetricsRegistry registry;
    TraceCollectorConfig trace_config;
    trace_config.clock_us = [&now] { return now; };
    TraceCollector collector(trace_config);

    core::DecodeServiceParams params;
    params.threads = 1;
    params.max_queue_depth = 1;
    params.overflow = core::OverflowPolicy::Reject;
    params.metrics = &registry;
    params.tracer = &collector;
    params.clock_us = [&now] { return now; };
    params.start_paused = true;
    params.tenants[5].burst = 1.0;  // rate 0: admits exactly one
    core::DecodeService service(params);

    // Tenant 5's first request takes the only queue slot and the only
    // bucket token; the second is shed by the bucket (Throttled), a
    // default-tenant request by queue depth (Overloaded/Rejected).
    std::future<core::DecodeOutcome> admitted =
        service.submit(*decoder_, {}, 5);
    std::future<core::DecodeOutcome> throttled =
        service.submit(*decoder_, {}, 5);
    std::future<core::DecodeOutcome> rejected =
        service.submit(*decoder_, {});
    EXPECT_EQ(throttled.get().status, core::DecodeStatus::Throttled);
    EXPECT_EQ(rejected.get().status, core::DecodeStatus::Overloaded);

    service.resumeDispatch();
    EXPECT_EQ(admitted.get().status, core::DecodeStatus::Ok);
    service.shutdown();

    // Both shed requests recorded their time-in-admission (zero under
    // the frozen manual clock — the contract is that they are counted
    // at all; before this histogram existed they vanished).
    telemetry::MetricsSnapshot snap = registry.snapshot();
    const telemetry::HistogramSnapshot &shed_latency =
        snap.histograms.at("decode_service.rejected_latency_us");
    EXPECT_EQ(shed_latency.count, 2u);
    EXPECT_EQ(shed_latency.sum, 0u);

    // Shed traces are tail-kept with the outcome and the same
    // latency as a root attribute.
    size_t shed_roots = 0;
    for (const FinishedTrace &trace : collector.traces()) {
        for (const Span &span : trace.spans) {
            if (span.parent != kNoSpan)
                continue;
            bool shed = false;
            bool latency_attr = false;
            for (const SpanAttr &attr : span.attrs) {
                shed |= attr.key == "outcome" &&
                        (attr.value == "throttled" ||
                         attr.value == "overloaded");
                latency_attr |= attr.key == "rejected_latency_us";
            }
            if (shed) {
                ++shed_roots;
                EXPECT_TRUE(latency_attr);
            }
        }
    }
    EXPECT_EQ(shed_roots, 2u);
}

TEST_F(ServiceTraceTest, ExemplarResolvesToRetrievableSlowTrace)
{
    uint64_t now = 0;
    telemetry::MetricsRegistry registry;
    TraceCollectorConfig trace_config;
    trace_config.clock_us = [&now] { return now; };
    TraceCollector collector(trace_config);

    core::DecodeServiceParams params;
    params.threads = 1;
    params.metrics = &registry;
    params.tracer = &collector;
    params.clock_us = [&now] { return now; };
    params.start_paused = true;
    core::DecodeService service(params);

    // Scripted slow request: enqueued at t=0, dispatched at t=7000.
    std::future<core::DecodeOutcome> future =
        service.submit(*decoder_, {});
    now = 7'000;
    service.resumeDispatch();
    EXPECT_EQ(future.get().status, core::DecodeStatus::Ok);
    service.shutdown();

    // The queue-latency histogram's exemplar points at the trace...
    telemetry::MetricsSnapshot snap = registry.snapshot();
    const telemetry::HistogramSnapshot &queue_latency =
        snap.histograms.at("decode_service.queue_latency_us");
    ASSERT_EQ(queue_latency.count, 1u);
    TraceId exemplar = 0;
    for (uint64_t id : queue_latency.exemplars)
        exemplar = std::max<TraceId>(exemplar, id);
    ASSERT_NE(exemplar, 0u);

    // ...and the trace is retrievable, with the 7 ms wait visible on
    // its queue span.
    std::optional<FinishedTrace> trace = collector.findTrace(exemplar);
    ASSERT_TRUE(trace.has_value());
    EXPECT_TRUE(wellFormedTree(*trace));
    bool queue_span = false;
    for (const Span &span : trace->spans)
        queue_span |= span.name == "queue" &&
                      span.end_us - span.start_us == 7'000;
    EXPECT_TRUE(queue_span);
}

TEST_F(ServiceTraceTest, StreamSessionsHangChunksOffOneRoot)
{
    TraceCollector collector;
    core::DecodeServiceParams params;
    params.threads = 2;
    params.tracer = &collector;
    core::DecodeService service(params);

    core::StreamParams stream_params;
    stream_params.decoder = decoder_.get();
    for (uint64_t block = 0; block < kBlocks; ++block)
        stream_params.expected_units.emplace_back(block, 0u);
    core::DecodeStream stream = service.openStream(stream_params);

    // Feed in eighths until the session completes early — the full
    // read set over-covers every unit, so it must.
    const size_t step = reads_.size() / 8;
    size_t chunks_fed = 0;
    for (size_t at = 0; at < reads_.size() && !stream.complete();
         at += step) {
        const size_t end = std::min(at + step, reads_.size());
        (void)stream.feed({reads_.begin() + at, reads_.begin() + end})
            .get();
        ++chunks_fed;
    }
    ASSERT_TRUE(stream.complete());
    EXPECT_EQ(stream.finish().get().status, core::DecodeStatus::Ok);
    service.shutdown();

    ASSERT_EQ(collector.traceCount(), 1u);
    const FinishedTrace trace = collector.traces().front();
    EXPECT_TRUE(wellFormedTree(trace));
    const std::multiset<std::string> names = spanNames(trace);
    EXPECT_EQ(names.count("stream"), 1u);
    EXPECT_EQ(names.count("stream.chunk"), chunks_fed);
    EXPECT_EQ(names.count("stream.finish"), 1u);
    EXPECT_GE(names.count("decode.primer_filter"), 1u);
    // The chunk that recovered the last unit fired the event.
    EXPECT_EQ(names.count("decode.early_termination"), 1u);
}

// ---------------------------------------------------------------------
// Simulator-level: byte-reproducible virtual-clock traces.

workload::SimulatorParams
tracedVirtualParams(const core::Decoder &decoder)
{
    workload::SimulatorParams sp;
    sp.clock = workload::SimulatorParams::Clock::Virtual;
    sp.decoder = &decoder;
    sp.virtual_service_time_us = 500;
    sp.trace_sample_every = 1;
    sp.trace_capacity = 1024;
    return sp;
}

/** Two tenants, five scripted arrivals. */
workload::Trace
scriptedTrace()
{
    workload::Trace trace;
    trace.push_back({0, 1, 0, workload::OpType::Read, 0});
    trace.push_back({0, 2, 0, workload::OpType::Read, 1});
    trace.push_back({200, 1, 1, workload::OpType::Read, 2});
    trace.push_back({1'500, 2, 0, workload::OpType::Read, 3});
    trace.push_back({2'400, 1, 2, workload::OpType::Read, 4});
    return trace;
}

class SimulatorTraceTest : public ::testing::Test
{
  protected:
    std::unique_ptr<core::Partition> partition_;
    std::unique_ptr<core::Decoder> decoder_;

    void
    SetUp() override
    {
        const test::PrimerPair &primers = test::primerPair(0);
        partition_ = std::make_unique<core::Partition>(
            test::partitionConfig(0), primers.forward,
            primers.reverse, 13);
        core::DecoderParams params;
        params.threads = 1;
        decoder_ =
            std::make_unique<core::Decoder>(*partition_, params);
    }

    workload::SimResult
    replay(size_t service_threads)
    {
        workload::SimulatorParams sp =
            tracedVirtualParams(*decoder_);
        sp.service_threads = service_threads;
        std::map<core::TenantId, core::TenantParams> admission;
        admission[1].weight = 2;
        admission[2].weight = 1;
        return workload::replayTrace(scriptedTrace(), admission,
                                     {1, 2}, sp);
    }
};

TEST_F(SimulatorTraceTest, VirtualReplayExportsByteIdenticalText)
{
    workload::SimResult a = replay(1);
    workload::SimResult b = replay(1);
    workload::SimResult wide = replay(4);
    ASSERT_NE(a.traces, nullptr);
    ASSERT_NE(b.traces, nullptr);
    ASSERT_NE(wide.traces, nullptr);

    const std::string text = a.traces->exportText();
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(text, b.traces->exportText());
    // Thread count must not move a single byte: the virtual clock and
    // the sorted exporters make the trace a pure function of the
    // scripted schedule.
    EXPECT_EQ(text, wide.traces->exportText());

    // Literal golden pin: the export is all-integer (no libm), so it
    // is portable enough to pin byte-for-byte. On mismatch the diff
    // IS the behavior change — admission order, WDRR credit turns, or
    // the virtual service-time schedule moved. Note tenant 1 (weight
    // 2) winning dispatch turns over tenant 2's earlier arrivals.
    EXPECT_EQ(
        text,
        "trace 1 tenant=1 spans=5\n"
        "  request start=0 dur=2900 tenant=1 outcome=ok\n"
        "    admission start=0 dur=0 outcome=admitted"
        " queue_depth_entry=0 ticket_wait_us=0\n"
        "    queue start=0 dur=2900 wdrr_deficit=1\n"
        "    decode start=2900 dur=0 reads=0\n"
        "      decode.primer_filter start=2900 dur=0 reads_in=0"
        " matched=0\n"
        "trace 2 tenant=2 spans=5\n"
        "  request start=0 dur=3900 tenant=2 outcome=ok\n"
        "    admission start=0 dur=0 outcome=admitted"
        " queue_depth_entry=1 ticket_wait_us=0\n"
        "    queue start=0 dur=3900 wdrr_deficit=0\n"
        "    decode start=3900 dur=0 reads=0\n"
        "      decode.primer_filter start=3900 dur=0 reads_in=0"
        " matched=0\n"
        "trace 3 tenant=1 spans=5\n"
        "  request start=200 dur=3200 tenant=1 outcome=ok\n"
        "    admission start=200 dur=0 outcome=admitted"
        " queue_depth_entry=2 ticket_wait_us=0\n"
        "    queue start=200 dur=3200 wdrr_deficit=0\n"
        "    decode start=3400 dur=0 reads=0\n"
        "      decode.primer_filter start=3400 dur=0 reads_in=0"
        " matched=0\n"
        "trace 4 tenant=2 spans=5\n"
        "  request start=1500 dur=3400 tenant=2 outcome=ok\n"
        "    admission start=1500 dur=0 outcome=admitted"
        " queue_depth_entry=3 ticket_wait_us=0\n"
        "    queue start=1500 dur=3400 wdrr_deficit=0\n"
        "    decode start=4900 dur=0 reads=0\n"
        "      decode.primer_filter start=4900 dur=0 reads_in=0"
        " matched=0\n"
        "trace 5 tenant=1 spans=5\n"
        "  request start=2400 dur=2000 tenant=1 outcome=ok\n"
        "    admission start=2400 dur=0 outcome=admitted"
        " queue_depth_entry=4 ticket_wait_us=0\n"
        "    queue start=2400 dur=2000 wdrr_deficit=1\n"
        "    decode start=4400 dur=0 reads=0\n"
        "      decode.primer_filter start=4400 dur=0 reads_in=0"
        " matched=0\n");

    // Every request produced a kept trace covering admission →
    // dispatch → decode.
    EXPECT_EQ(a.traces->traceCount(), scriptedTrace().size());
    for (const FinishedTrace &trace : a.traces->traces()) {
        EXPECT_TRUE(wellFormedTree(trace));
        const std::multiset<std::string> names = spanNames(trace);
        EXPECT_EQ(names.count("request"), 1u);
        EXPECT_EQ(names.count("admission"), 1u);
        EXPECT_EQ(names.count("queue"), 1u);
        EXPECT_EQ(names.count("decode"), 1u);
    }
}

TEST_F(SimulatorTraceTest, ReportCarriesSlowestTracePerTenant)
{
    workload::SimResult result = replay(1);
    ASSERT_NE(result.traces, nullptr);
    for (const workload::TenantSlo &slo : result.report.tenants) {
        ASSERT_NE(slo.slowest_trace_id, 0u)
            << "tenant " << slo.tenant;
        std::optional<FinishedTrace> trace =
            result.traces->findTrace(slo.slowest_trace_id);
        ASSERT_TRUE(trace.has_value()) << "tenant " << slo.tenant;
        EXPECT_EQ(trace->tenant, slo.tenant);
        // The annotation is the root span's duration.
        for (const Span &span : trace->spans) {
            if (span.parent == kNoSpan) {
                EXPECT_EQ(span.end_us - span.start_us,
                          slo.slowest_trace_us);
            }
        }
        // No kept trace of the tenant is slower.
        for (const FinishedTrace &other : result.traces->traces()) {
            if (other.tenant != slo.tenant)
                continue;
            for (const Span &span : other.spans) {
                if (span.parent == kNoSpan) {
                    EXPECT_LE(span.end_us - span.start_us,
                              slo.slowest_trace_us);
                }
            }
        }
    }
}

TEST_F(SimulatorTraceTest, SamplingOffLeavesNoCollector)
{
    workload::SimulatorParams sp = tracedVirtualParams(*decoder_);
    sp.trace_sample_every = 0;
    std::map<core::TenantId, core::TenantParams> admission;
    admission[1];
    admission[2];
    workload::SimResult result = workload::replayTrace(
        scriptedTrace(), admission, {1, 2}, sp);
    EXPECT_EQ(result.traces, nullptr);
    for (const workload::TenantSlo &slo : result.report.tenants) {
        EXPECT_EQ(slo.slowest_trace_id, 0u);
        EXPECT_EQ(slo.slowest_trace_us, 0u);
    }
}

TEST_F(SimulatorTraceTest, TracingDoesNotMoveTheReportFingerprint)
{
    workload::SimulatorParams traced = tracedVirtualParams(*decoder_);
    workload::SimulatorParams untraced = traced;
    untraced.trace_sample_every = 0;
    std::map<core::TenantId, core::TenantParams> admission;
    admission[1];
    admission[2];
    workload::SimResult with = workload::replayTrace(
        scriptedTrace(), admission, {1, 2}, traced);
    workload::SimResult without = workload::replayTrace(
        scriptedTrace(), admission, {1, 2}, untraced);
    EXPECT_EQ(with.report_fingerprint, without.report_fingerprint);
    EXPECT_EQ(with.end_clock_us, without.end_clock_us);
}

TEST_F(SimulatorTraceTest, ChromeJsonExportIsWellFormed)
{
    workload::SimResult result = replay(2);
    ASSERT_NE(result.traces, nullptr);
    const std::string json = result.traces->exportChromeJson();

    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\": \"ms\", "
                         "\"traceEvents\": [\n",
                         0),
              0u);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");

    // Every event is a complete "X" event with pid/tid/ts/dur.
    size_t total_spans = 0;
    for (const FinishedTrace &trace : result.traces->traces())
        total_spans += trace.spans.size();
    EXPECT_GT(total_spans, 0u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"X\""), total_spans);
    EXPECT_EQ(countOccurrences(json, "\"pid\": "), total_spans);
    EXPECT_EQ(countOccurrences(json, "\"tid\": "), total_spans);
    EXPECT_EQ(countOccurrences(json, "\"ts\": "), total_spans);
    EXPECT_EQ(countOccurrences(json, "\"dur\": "), total_spans);
    // No dangling comma before the closing bracket.
    EXPECT_EQ(json.find(",\n]"), std::string::npos);
}

} // namespace
} // namespace dnastore::telemetry
