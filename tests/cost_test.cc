/**
 * @file
 * Tests for the cost ledger.
 */

#include <gtest/gtest.h>

#include "core/cost.h"

namespace dnastore::core {
namespace {

TEST(CostModelTest, SynthesisAccounting)
{
    CostModel costs;
    costs.recordSynthesis(15, 150);
    costs.recordSynthesis(8805, 150);
    EXPECT_EQ(costs.moleculesSynthesized(), 8820u);
    EXPECT_EQ(costs.basesSynthesized(), 8820u * 150u);
}

TEST(CostModelTest, SequencingAccounting)
{
    CostModel costs;
    costs.recordSequencing(225);
    costs.recordSequencing(50000);
    EXPECT_EQ(costs.readsSequenced(), 50225u);
}

TEST(CostModelTest, DollarConversion)
{
    CostParams params;
    params.synthesis_per_base = 2.0;
    params.sequencing_per_read = 0.5;
    CostModel costs(params);
    costs.recordSynthesis(10, 100);
    costs.recordSequencing(4);
    EXPECT_DOUBLE_EQ(costs.synthesisCost(), 2000.0);
    EXPECT_DOUBLE_EQ(costs.sequencingCost(), 2.0);
    EXPECT_DOUBLE_EQ(costs.totalCost(), 2002.0);
}

TEST(CostModelTest, RoundTrips)
{
    CostModel costs;
    EXPECT_EQ(costs.roundTrips(), 0u);
    costs.recordRoundTrip();
    costs.recordRoundTrip();
    EXPECT_EQ(costs.roundTrips(), 2u);
}

TEST(CostModelTest, PaperSynthesisRatio)
{
    // Section 7.5: naive update synthesizes 8805 molecules vs our 15
    // -> ~580x reduction.
    CostModel naive, ours;
    naive.recordSynthesis(8805, 150);
    ours.recordSynthesis(15, 150);
    double ratio = naive.synthesisCost() / ours.synthesisCost();
    EXPECT_NEAR(ratio, 587.0, 1.0);
}

} // namespace
} // namespace dnastore::core
