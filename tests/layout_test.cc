/**
 * @file
 * Tests for strand assembly/parsing and the paper's exact geometry.
 */

#include <gtest/gtest.h>

#include "codec/base_codec.h"
#include "core/layout.h"
#include "index/sparse_index.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

const dna::Sequence &kFwd = test::fwdPrimer();
const dna::Sequence &kRev = test::revPrimer();

TEST(ConfigTest, PaperGeometry)
{
    PartitionConfig config;
    config.validate();
    EXPECT_EQ(config.sparseIndexLength(), 10u);
    EXPECT_EQ(config.payloadBases(), 96u);
    EXPECT_EQ(config.columnBytes(), 24u);
    EXPECT_EQ(config.unitDataBytes(), 264u);
    EXPECT_EQ(config.blockCount(), 1024u);
}

TEST(ConfigTest, ValidationCatchesBadGeometry)
{
    PartitionConfig config;
    config.block_data_bytes = 512;  // exceeds the 264B unit
    EXPECT_THROW(config.validate(), dnastore::FatalError);

    PartitionConfig short_strand;
    short_strand.strand_length = 50;
    EXPECT_THROW(short_strand.payloadBases(), dnastore::FatalError);
}

TEST(LayoutTest, BuildParseRoundTrip)
{
    PartitionConfig config;
    index::SparseIndexTree tree(1, 5);
    codec::Bytes payload(24, 0xa5);
    dna::Sequence payload_bases = codec::bytesToBases(payload);

    dna::Sequence strand =
        buildStrand(config, kFwd, kRev, tree.leafIndex(531),
                    tree.versionBase(531, 0), 7, payload_bases);
    EXPECT_EQ(strand.size(), 150u);
    EXPECT_TRUE(strand.startsWith(kFwd));
    EXPECT_TRUE(strand.endsWith(kRev.reverseComplement()));
    EXPECT_EQ(strand[20], 'A');  // sync base

    auto fields = parseStrand(config, strand);
    ASSERT_TRUE(fields.has_value());
    EXPECT_EQ(fields->payload, payload_bases);
    EXPECT_EQ(decodeIntra(config, fields->intra), 7u);
    auto match = tree.decode(fields->address);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->block, 531u);
    EXPECT_EQ(match->version, 0u);
}

TEST(LayoutTest, WrongLengthRejected)
{
    PartitionConfig config;
    EXPECT_FALSE(
        parseStrand(config, dna::Sequence("ACGT")).has_value());
}

TEST(LayoutTest, IntraCodec)
{
    PartitionConfig config;
    for (unsigned column = 0; column < 15; ++column) {
        dna::Sequence intra = encodeIntra(config, column);
        EXPECT_EQ(intra.size(), 2u);
        EXPECT_EQ(decodeIntra(config, intra), column);
    }
    EXPECT_THROW(encodeIntra(config, 15), dnastore::FatalError);
}

TEST(LayoutTest, PayloadLengthEnforced)
{
    PartitionConfig config;
    index::SparseIndexTree tree(1, 5);
    EXPECT_THROW(buildStrand(config, kFwd, kRev, tree.leafIndex(0),
                             dna::Base::A, 0,
                             dna::Sequence("ACGT")),
                 dnastore::FatalError);
}

} // namespace
} // namespace dnastore::core
