/**
 * @file
 * Seeded property-based round-trip fuzz.
 *
 * Each iteration draws a random configuration — block count,
 * partition geometry, sequencer noise, read coverage, streaming chunk
 * size — from a seeded RNG and drives the full channel: encode →
 * synthesize → PCR → sequence → decode. Properties checked per
 * iteration:
 *
 *  1. every block decodes back to its source bytes via
 *     Decoder::decodeAll (noise stays inside the envelope the
 *     round-trip matrix pins, so recovery must hold);
 *  2. the deferred streaming path over the same reads, fed in
 *     random-sized chunks, produces byte-identical units AND stats to
 *     the one-shot decode (the StreamingDecoder contract);
 *  3. the eager streaming path (all (block, 0) expected) emits every
 *     block with a payload byte-identical to the one-shot unit;
 *  4. decoding the same reads with the SIMD kernels forced to the
 *     scalar reference produces byte-identical units AND stats to
 *     the best-ISA decode (the any-ISA determinism contract).
 *
 * On failure the iteration's replay line is printed
 * (`--fuzz-seed=<seed> --iterations=1`), so a CI hit reproduces
 * locally in one run. CI executes a small iteration count (default
 * 3); soak runs pass `--iterations=N` directly to the binary.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "core/decoder.h"
#include "core/partition.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

// Set by main() from --iterations / --fuzz-seed; defaults are the CI
// smoke configuration.
size_t g_iterations = 3;
uint64_t g_base_seed = 0xF022'0000ULL;

/** One randomly drawn channel configuration. */
struct FuzzCase
{
    uint64_t seed = 0;
    size_t partition_index = 0;
    size_t blocks = 0;
    size_t coverage = 0;
    size_t chunk_reads = 0;
    double sub_rate = 0.0;
    double indel_rate = 0.0;
    size_t encode_threads = 1;

    std::string
    describe() const
    {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "seed=%llu partition=%zu blocks=%zu cov=%zu "
                      "chunk=%zu sub=%.4f indel=%.4f threads=%zu — "
                      "replay: --fuzz-seed=%llu --iterations=1",
                      static_cast<unsigned long long>(seed),
                      partition_index, blocks, coverage, chunk_reads,
                      sub_rate, indel_rate, encode_threads,
                      static_cast<unsigned long long>(seed));
        return buf;
    }
};

/** Draw a case from @p seed. Ranges stay inside the noise envelope
 *  the round-trip matrix proves recoverable (sub <= 0.015,
 *  indel <= 0.003, coverage >= 12). */
FuzzCase
drawCase(uint64_t seed)
{
    Rng rng(seed);
    FuzzCase fc;
    fc.seed = seed;
    fc.partition_index = rng.nextBelow(test::kPrimerPairCount);
    fc.blocks = 2 + rng.nextBelow(4);             // 2..5
    fc.coverage = 12 + rng.nextBelow(11);         // 12..22
    fc.chunk_reads = 50 + rng.nextBelow(151);     // 50..200
    fc.sub_rate = 0.002 + rng.nextDouble() * 0.013;   // [0.002, 0.015)
    fc.indel_rate = 0.0005 + rng.nextDouble() * 0.0025;
    fc.encode_threads = 1 + rng.nextBelow(4);     // 1..4
    return fc;
}

/** The case's channel leg: source bytes + sequenced reads. */
struct Channel
{
    std::unique_ptr<Partition> partition;
    Bytes data;
    std::vector<sim::Read> reads;
};

Channel
buildChannel(const FuzzCase &fc)
{
    Channel ch;
    const test::PrimerPair &primers =
        test::primerPair(fc.partition_index);
    ch.partition = std::make_unique<Partition>(
        test::partitionConfig(fc.partition_index), primers.forward,
        primers.reverse,
        static_cast<uint32_t>(13 + fc.partition_index));
    ch.data = test::corpusBlocks(fc.blocks,
                                 Rng::deriveSeed(fc.seed, 1));

    EncodeParams encode;
    encode.threads = fc.encode_threads;
    sim::SynthesisParams synthesis;
    synthesis.seed = Rng::deriveSeed(fc.seed, 2);
    sim::Pool pool = sim::synthesize(
        ch.partition->encodeFile(ch.data, encode), synthesis);

    sim::PcrParams pcr;
    pcr.cycles = 15;
    sim::Pool product = sim::runPcr(
        pool, {sim::PcrPrimer{primers.forward, 1.0}}, primers.reverse,
        pcr);

    sim::SequencerParams sequencer;
    sequencer.sub_rate = fc.sub_rate;
    sequencer.ins_rate = fc.indel_rate;
    sequencer.del_rate = fc.indel_rate;
    sequencer.seed = Rng::deriveSeed(fc.seed, 3);
    ch.reads = sim::sequencePool(
        product,
        fc.blocks * ch.partition->config().rs_n * fc.coverage,
        sequencer);
    return ch;
}

std::vector<std::vector<sim::Read>>
chunked(const std::vector<sim::Read> &reads, size_t chunk_reads)
{
    std::vector<std::vector<sim::Read>> chunks;
    for (size_t i = 0; i < reads.size(); i += chunk_reads) {
        size_t end = std::min(reads.size(), i + chunk_reads);
        chunks.emplace_back(reads.begin() + i, reads.begin() + end);
    }
    return chunks;
}

void
runIteration(const FuzzCase &fc)
{
    Channel ch = buildChannel(fc);
    DecoderParams params;
    params.threads = 1;
    Decoder decoder(*ch.partition, params);

    // Property 1: one-shot recovery of every source block.
    DecodeStats one_shot_stats;
    auto one_shot = decoder.decodeAll(ch.reads, &one_shot_stats);
    for (uint64_t block = 0; block < fc.blocks; ++block) {
        auto it = one_shot.find(block);
        ASSERT_NE(it, one_shot.end()) << "block " << block;
        auto version = it->second.versions.find(0);
        ASSERT_NE(version, it->second.versions.end())
            << "block " << block;
        Bytes recovered = version->second;
        recovered.resize(ch.partition->config().block_data_bytes);
        EXPECT_TRUE(test::blockMatches(recovered, ch.data, block));
    }

    // Property 4: forced-scalar kernels == best-ISA kernels, bytes
    // and stats (trivially true when scalar already is the best ISA).
    if (simd::activeIsa() != simd::Isa::Scalar) {
        simd::ScopedForceIsa force(simd::Isa::Scalar);
        Decoder scalar_decoder(*ch.partition, params);
        DecodeStats scalar_stats;
        auto scalar_units =
            scalar_decoder.decodeAll(ch.reads, &scalar_stats);
        EXPECT_EQ(scalar_units, one_shot)
            << "scalar vs " << simd::isaName(simd::bestSupportedIsa());
        EXPECT_EQ(scalar_stats, one_shot_stats);
    }

    const auto chunks = chunked(ch.reads, fc.chunk_reads);

    // Property 2: deferred streaming == one-shot, bytes and stats.
    {
        StreamingDecoder session(*ch.partition, params);
        for (const auto &chunk : chunks)
            EXPECT_EQ(session.feed(chunk), chunk.size());
        DecodeStats streamed_stats;
        auto streamed = session.finish(&streamed_stats);
        EXPECT_EQ(streamed, one_shot);
        EXPECT_EQ(streamed_stats, one_shot_stats);
    }

    // Property 3: eager streaming emits every block byte-identically.
    {
        StreamingParams streaming;
        for (uint64_t block = 0; block < fc.blocks; ++block)
            streaming.expected_units.emplace_back(block, 0u);
        StreamingDecoder session(*ch.partition, params, streaming);
        for (const auto &chunk : chunks) {
            session.feed(chunk);
            if (session.complete())
                break;
        }
        DecodeStats eager_stats;
        auto eager = session.finish(&eager_stats);
        for (uint64_t block = 0; block < fc.blocks; ++block) {
            auto it = eager.find(block);
            ASSERT_NE(it, eager.end()) << "block " << block;
            EXPECT_EQ(it->second.versions.at(0),
                      one_shot.at(block).versions.at(0))
                << "block " << block;
        }
    }
}

TEST(RoundtripFuzzTest, SeededChannelsRoundTrip)
{
    for (size_t i = 0; i < g_iterations; ++i) {
        const FuzzCase fc =
            drawCase(Rng::deriveSeed(g_base_seed, i));
        SCOPED_TRACE(fc.describe());
        runIteration(fc);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace dnastore::core

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        constexpr std::string_view kIterations = "--iterations=";
        constexpr std::string_view kSeed = "--fuzz-seed=";
        if (arg.rfind(kIterations, 0) == 0) {
            dnastore::core::g_iterations = static_cast<size_t>(
                std::strtoull(arg.data() + kIterations.size(),
                              nullptr, 10));
        } else if (arg.rfind(kSeed, 0) == 0) {
            dnastore::core::g_base_seed =
                std::strtoull(arg.data() + kSeed.size(), nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "unknown flag %s\nusage: %s [gtest flags] "
                         "[--iterations=N] [--fuzz-seed=S]\n",
                         argv[i], argv[0]);
            return 2;
        }
    }
    return RUN_ALL_TESTS();
}
