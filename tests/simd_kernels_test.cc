/**
 * @file
 * Parity suite for the runtime-dispatched SIMD kernels.
 *
 * The scalar table defines the semantics; every other table that
 * kernelsFor() reports runnable on this CPU must reproduce it
 * bit-for-bit on randomized inputs, including the awkward cases
 * (saturated lanes, bands clipped to one cell, remainder tails
 * shorter than a vector). This is what extends the decode pipeline's
 * determinism contract from "any thread count" to "any ISA".
 *
 * Also pins the GF zero-handling contract the kernels depend on: the
 * PSHUFB-shaped multiply tables are built from the zero-checked
 * scalar mul(), so no SIMD path ever consults the log[0] sentinel.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/simd.h"
#include "ecc/gf16.h"
#include "ecc/gf256.h"

namespace dnastore::simd {
namespace {

using ecc::GF16;
using ecc::GF256;

/** Every vector ISA the dispatcher can actually run here. */
std::vector<Isa>
vectorIsas()
{
    std::vector<Isa> isas;
    for (Isa isa : {Isa::Sse42, Isa::Avx2, Isa::Neon}) {
        if (kernelsFor(isa) != nullptr)
            isas.push_back(isa);
    }
    return isas;
}

const Kernels &
scalarRef()
{
    const Kernels *scalar = kernelsFor(Isa::Scalar);
    EXPECT_NE(scalar, nullptr);
    return *scalar;
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(cpuSupports(Isa::Scalar));
    EXPECT_NE(kernelsFor(Isa::Scalar), nullptr);
}

TEST(SimdDispatchTest, ActiveIsaIsRunnable)
{
    EXPECT_TRUE(cpuSupports(activeIsa()));
    EXPECT_EQ(kernelsFor(activeIsa()), &kernels());
}

TEST(SimdDispatchTest, BestSupportedIsRunnable)
{
    EXPECT_TRUE(cpuSupports(bestSupportedIsa()));
    EXPECT_NE(kernelsFor(bestSupportedIsa()), nullptr);
}

TEST(SimdDispatchTest, IsaNamesAreStable)
{
    EXPECT_STREQ(isaName(Isa::Scalar), "scalar");
    EXPECT_STREQ(isaName(Isa::Sse42), "sse4.2");
    EXPECT_STREQ(isaName(Isa::Avx2), "avx2");
    EXPECT_STREQ(isaName(Isa::Neon), "neon");
}

TEST(SimdDispatchTest, ScopedForceIsaRoundTrips)
{
    const Isa before = activeIsa();
    {
        ScopedForceIsa force(Isa::Scalar);
        EXPECT_EQ(activeIsa(), Isa::Scalar);
        EXPECT_EQ(&kernels(), kernelsFor(Isa::Scalar));
    }
    EXPECT_EQ(activeIsa(), before);
    EXPECT_EQ(&kernels(), kernelsFor(before));
}

/** Random DP cell: mostly finite, some saturated/near-saturated. */
uint16_t
randomCell(Rng &rng)
{
    switch (rng.nextBelow(8)) {
    case 0:
        return kInf16;
    case 1:
        return kInf16 - 1;
    default:
        return static_cast<uint16_t>(rng.nextBelow(3000));
    }
}

TEST(SimdKernelParityTest, EditRowMatchesScalar)
{
    const std::vector<Isa> isas = vectorIsas();
    const Kernels &scalar = scalarRef();
    Rng rng(0x51AD'0001);
    const char kBases[] = "ACGT";
    for (int trial = 0; trial < 400; ++trial) {
        const size_t n = 1 + rng.nextBelow(170);
        std::vector<uint8_t> b(n + kEditRowPad, 0);
        for (size_t i = 0; i < n; ++i)
            b[i] = static_cast<uint8_t>(kBases[rng.nextBelow(4)]);
        const uint8_t a_ch =
            static_cast<uint8_t>(kBases[rng.nextBelow(4)]);

        const size_t lo = 1 + rng.nextBelow(n);
        const size_t hi = lo + rng.nextBelow(n - lo + 1);
        const uint16_t carry_in =
            rng.nextBelow(4) == 0 ? kInf16 : randomCell(rng);

        std::vector<uint16_t> prev(n + 2 + kEditRowPad, kInf16);
        for (size_t j = lo > 0 ? lo - 1 : 0; j <= hi; ++j)
            prev[j] = randomCell(rng);

        std::vector<uint16_t> curr_scalar(prev.size(), kInf16);
        std::vector<uint16_t> curr_vec(prev.size(), kInf16);
        const uint16_t want = scalar.edit_row(
            b.data(), a_ch, prev.data(), curr_scalar.data(), lo, hi,
            carry_in);
        for (Isa isa : isas) {
            std::memset(curr_vec.data(), 0xFF,
                        curr_vec.size() * sizeof(uint16_t));
            const uint16_t got = kernelsFor(isa)->edit_row(
                b.data(), a_ch, prev.data(), curr_vec.data(), lo, hi,
                carry_in);
            ASSERT_EQ(got, want)
                << isaName(isa) << " trial " << trial << " lo=" << lo
                << " hi=" << hi;
            // Cells below lo are untouched (still 0xFFFF in both);
            // cells in (hi, hi+pad] must be restored to kInf16.
            for (size_t j = lo; j <= hi + kEditRowPad; ++j) {
                ASSERT_EQ(curr_vec[j], curr_scalar[j])
                    << isaName(isa) << " trial " << trial << " j="
                    << j << " lo=" << lo << " hi=" << hi;
            }
        }
    }
}

TEST(SimdKernelParityTest, MinhashMatchesScalar)
{
    const std::vector<Isa> isas = vectorIsas();
    const Kernels &scalar = scalarRef();
    Rng rng(0x51AD'0002);
    const size_t kQs[] = {1, 2, 3, 4, 8, 12, 16, 31, 32};
    for (int trial = 0; trial < 300; ++trial) {
        const size_t q = kQs[rng.nextBelow(std::size(kQs))];
        const size_t len = q + rng.nextBelow(200);
        std::vector<uint8_t> bases(len);
        for (uint8_t &base : bases)
            base = static_cast<uint8_t>(rng.nextBelow(4));
        const uint64_t mask =
            q * 2 >= 64 ? ~uint64_t{0} : (uint64_t{1} << (q * 2)) - 1;
        const size_t num_salts = 1 + rng.nextBelow(7);
        std::vector<uint64_t> salts(num_salts);
        for (uint64_t &salt : salts)
            salt = rng.next();

        std::vector<uint64_t> want(num_salts);
        std::vector<uint64_t> got(num_salts);
        scalar.minhash(bases.data(), len, q, mask, salts.data(),
                       num_salts, want.data());
        for (Isa isa : isas) {
            std::fill(got.begin(), got.end(), uint64_t{0});
            kernelsFor(isa)->minhash(bases.data(), len, q, mask,
                                     salts.data(), num_salts,
                                     got.data());
            ASSERT_EQ(got, want)
                << isaName(isa) << " trial " << trial << " len="
                << len << " q=" << q;
        }
    }
}

TEST(SimdKernelParityTest, Gf16SyndromesMatchScalarAndHorner)
{
    const std::vector<Isa> isas = vectorIsas();
    const Kernels &scalar = scalarRef();
    Rng rng(0x51AD'0003);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t ncols = 1 + rng.nextBelow(15);
        const size_t parity = 1 + rng.nextBelow(4);
        const size_t rows = 1 + rng.nextBelow(70);

        std::vector<std::vector<uint8_t>> cols(ncols);
        std::vector<const uint8_t *> col_ptrs(ncols);
        for (size_t c = 0; c < ncols; ++c) {
            cols[c].resize(rows);
            for (uint8_t &v : cols[c])
                v = static_cast<uint8_t>(rng.nextBelow(16));
            col_ptrs[c] = cols[c].data();
        }
        std::vector<uint8_t> mul_tables(parity * 16);
        for (size_t s = 0; s < parity; ++s) {
            const uint8_t *row = GF16::mulTable(
                GF16::alphaPow(static_cast<int>(s + 1)));
            std::copy(row, row + 16, mul_tables.begin() + s * 16);
        }

        std::vector<uint8_t> want(parity * rows);
        scalar.gf16_syndromes(col_ptrs.data(), ncols, parity, rows,
                              mul_tables.data(), want.data());

        // Independent Horner reference straight from GF16 ops.
        for (size_t s = 0; s < parity; ++s) {
            const uint8_t x =
                GF16::alphaPow(static_cast<int>(s + 1));
            for (size_t r = 0; r < rows; ++r) {
                uint8_t acc = 0;
                for (size_t c = 0; c < ncols; ++c) {
                    acc = static_cast<uint8_t>(GF16::mul(acc, x) ^
                                               cols[c][r]);
                }
                ASSERT_EQ(want[s * rows + r], acc)
                    << "scalar kernel vs Horner, trial " << trial;
            }
        }

        std::vector<uint8_t> got(parity * rows);
        for (Isa isa : isas) {
            std::fill(got.begin(), got.end(), uint8_t{0xAA});
            kernelsFor(isa)->gf16_syndromes(col_ptrs.data(), ncols,
                                            parity, rows,
                                            mul_tables.data(),
                                            got.data());
            ASSERT_EQ(got, want)
                << isaName(isa) << " trial " << trial << " ncols="
                << ncols << " rows=" << rows;
        }
    }
}

TEST(SimdKernelParityTest, Gf16TableXorMatchesScalar)
{
    const std::vector<Isa> isas = vectorIsas();
    const Kernels &scalar = scalarRef();
    Rng rng(0x51AD'0004);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t len = 1 + rng.nextBelow(150);
        const uint8_t c = static_cast<uint8_t>(rng.nextBelow(16));
        const uint8_t *table = GF16::mulTable(c);
        std::vector<uint8_t> src(len);
        for (uint8_t &v : src)
            v = static_cast<uint8_t>(rng.nextBelow(16));
        std::vector<uint8_t> base(len);
        for (uint8_t &v : base)
            v = static_cast<uint8_t>(rng.nextBelow(256));

        std::vector<uint8_t> want = base;
        scalar.gf16_table_xor(table, src.data(), want.data(), len);
        for (size_t i = 0; i < len; ++i) {
            ASSERT_EQ(want[i],
                      static_cast<uint8_t>(base[i] ^
                                           GF16::mul(c, src[i])));
        }
        for (Isa isa : isas) {
            std::vector<uint8_t> got = base;
            kernelsFor(isa)->gf16_table_xor(table, src.data(),
                                            got.data(), len);
            ASSERT_EQ(got, want)
                << isaName(isa) << " trial " << trial;
        }
    }
}

TEST(SimdKernelParityTest, Gf256MulConstAccumMatchesScalar)
{
    const std::vector<Isa> isas = vectorIsas();
    const Kernels &scalar = scalarRef();
    const uint8_t *mul_lo = GF256::mulTablesLo();
    const uint8_t *mul_hi = GF256::mulTablesHi();
    Rng rng(0x51AD'0005);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t len = 1 + rng.nextBelow(300);
        // Bias toward the interesting constants 0 and 1.
        const uint8_t c =
            trial < 8 ? static_cast<uint8_t>(trial % 2)
                      : static_cast<uint8_t>(rng.nextBelow(256));
        std::vector<uint8_t> src(len);
        for (uint8_t &v : src)
            v = static_cast<uint8_t>(rng.nextBelow(256));
        std::vector<uint8_t> base(len);
        for (uint8_t &v : base)
            v = static_cast<uint8_t>(rng.nextBelow(256));

        std::vector<uint8_t> want = base;
        scalar.gf256_mul_const_accum(c, src.data(), want.data(), len,
                                     mul_lo, mul_hi);
        for (size_t i = 0; i < len; ++i) {
            ASSERT_EQ(want[i],
                      static_cast<uint8_t>(base[i] ^
                                           GF256::mul(c, src[i])));
        }
        for (Isa isa : isas) {
            std::vector<uint8_t> got = base;
            kernelsFor(isa)->gf256_mul_const_accum(
                c, src.data(), got.data(), len, mul_lo, mul_hi);
            ASSERT_EQ(got, want)
                << isaName(isa) << " trial " << trial << " c="
                << static_cast<int>(c);
        }
    }
}

// The GF tables the kernels consume are built from the zero-checked
// scalar mul(), so multiplication by or of zero is exactly zero and
// the log[0] sentinel is never read (an accidental read would show up
// here as a nonzero product in row or column 0).

TEST(SimdGfTableTest, Gf16MulTableMatchesCheckedMul)
{
    for (unsigned c = 0; c < 16; ++c) {
        const uint8_t *row =
            GF16::mulTable(static_cast<uint8_t>(c));
        for (unsigned v = 0; v < 16; ++v) {
            ASSERT_EQ(row[v],
                      GF16::mul(static_cast<uint8_t>(c),
                                static_cast<uint8_t>(v)));
        }
        ASSERT_EQ(row[0], 0);
        ASSERT_EQ(GF16::mulTable(0)[c], 0);
    }
}

TEST(SimdGfTableTest, Gf256NibbleTablesMatchCheckedMul)
{
    const uint8_t *lo = GF256::mulTablesLo();
    const uint8_t *hi = GF256::mulTablesHi();
    for (unsigned c = 0; c < 256; ++c) {
        for (unsigned v = 0; v < 16; ++v) {
            ASSERT_EQ(lo[c * 16 + v],
                      GF256::mul(static_cast<uint8_t>(c),
                                 static_cast<uint8_t>(v)));
            ASSERT_EQ(hi[c * 16 + v],
                      GF256::mul(static_cast<uint8_t>(c),
                                 static_cast<uint8_t>(v << 4)));
        }
        // Split-nibble recomposition over the full byte range.
        for (unsigned x = 0; x < 256; x += 37) {
            ASSERT_EQ(static_cast<uint8_t>(lo[c * 16 + (x & 0xF)] ^
                                           hi[c * 16 + (x >> 4)]),
                      GF256::mul(static_cast<uint8_t>(c),
                                 static_cast<uint8_t>(x)));
        }
        ASSERT_EQ(lo[c * 16], 0);
        ASSERT_EQ(hi[c * 16], 0);
    }
    for (unsigned v = 0; v < 16; ++v) {
        ASSERT_EQ(lo[v], 0);  // row c=0 is all zero
        ASSERT_EQ(hi[v], 0);
    }
}

TEST(SimdGfTableTest, ZeroLogSentinelsAreOutOfRange)
{
    // The sentinel must not be a valid exponent, so an accidental
    // log[0] read cannot alias a real discrete log.
    EXPECT_GE(GF16::kZeroLogSentinel, GF16::kMultGroupOrder);
    EXPECT_GE(GF256::kZeroLogSentinel, GF256::kMultGroupOrder);
    EXPECT_THROW(GF16::log(0), dnastore::PanicError);
    EXPECT_THROW(GF256::log(0), dnastore::PanicError);
}

} // namespace
} // namespace dnastore::simd
