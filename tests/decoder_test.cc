/**
 * @file
 * Tests for the full decode pipeline (Section 8) on simulated reads.
 */

#include <gtest/gtest.h>

#include "common/arena.h"
#include "core/decoder.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

const dna::Sequence &kFwd = test::fwdPrimer();
const dna::Sequence &kRev = test::revPrimer();

/** Small end-to-end fixture: 20-block file, synthesized pool. */
class DecoderTest : public ::testing::Test
{
  protected:
    PartitionConfig config_;
    std::unique_ptr<Partition> partition_;
    Bytes data_;
    sim::Pool pool_;

    void
    SetUp() override
    {
        partition_ =
            std::make_unique<Partition>(config_, kFwd, kRev, 13);
        data_ = test::corpusBlocks(20, 77);
        sim::SynthesisParams synthesis;
        pool_ = sim::synthesize(partition_->encodeFile(data_),
                                synthesis);
    }

    Bytes
    blockBytes(uint64_t block) const
    {
        return Bytes(data_.begin() + block * 256,
                     data_.begin() + (block + 1) * 256);
    }

    std::vector<sim::Read>
    sequenceWholePool(size_t reads, uint64_t seed = 7) const
    {
        sim::SequencerParams params;
        params.seed = seed;
        return sim::sequencePool(pool_, reads, params);
    }
};

TEST_F(DecoderTest, DecodeAllRecoversEveryBlock)
{
    DecoderParams params;
    Decoder decoder(*partition_, params);
    DecodeStats stats;
    auto units =
        decoder.decodeAll(sequenceWholePool(20 * 15 * 20), &stats);
    ASSERT_EQ(units.size(), 20u);
    for (uint64_t block = 0; block < 20; ++block) {
        auto it = units.find(block);
        ASSERT_NE(it, units.end()) << "block " << block;
        ASSERT_TRUE(it->second.versions.count(0));
        Bytes content = it->second.versions.at(0);
        content.resize(256);
        EXPECT_EQ(content, blockBytes(block)) << "block " << block;
    }
    EXPECT_EQ(stats.units_decoded, 20u);
    EXPECT_EQ(stats.units_failed, 0u);
}

TEST_F(DecoderTest, DecodeBlockReturnsFinalContents)
{
    DecoderParams params;
    Decoder decoder(*partition_, params);
    auto content =
        decoder.decodeBlock(sequenceWholePool(20 * 15 * 20), 7);
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ(*content, blockBytes(7));
}

TEST_F(DecoderTest, AppliesUpdateChain)
{
    // Add an update patch to block 5 and decode through the chain.
    UpdateRecord record;
    record.kind = UpdateRecord::Kind::kInline;
    record.op.delete_pos = 0;
    record.op.delete_len = 5;
    record.op.insert_pos = 0;
    record.op.insert_bytes = Bytes{'H', 'E', 'L', 'L', 'O'};
    sim::SynthesisParams synthesis;
    synthesis.seed = 99;
    sim::Pool patch = sim::synthesize(
        partition_->encodePatch(5, record, 1), synthesis);
    pool_.mixIn(patch,
                (pool_.totalMass() / pool_.speciesCount()) /
                    (patch.totalMass() / patch.speciesCount()));

    DecoderParams params;
    Decoder decoder(*partition_, params);
    auto content =
        decoder.decodeBlock(sequenceWholePool(21 * 15 * 20), 5);
    ASSERT_TRUE(content.has_value());
    Bytes expected = blockBytes(5);
    for (int i = 0; i < 5; ++i)
        expected[i] = "HELLO"[i];
    EXPECT_EQ(*content, expected);
}

TEST_F(DecoderTest, SurvivesSequencingNoise)
{
    DecoderParams params;
    Decoder decoder(*partition_, params);
    sim::SequencerParams noisy;
    noisy.sub_rate = 0.01;
    noisy.ins_rate = 0.002;
    noisy.del_rate = 0.002;
    noisy.seed = 3;
    auto reads = sim::sequencePool(pool_, 20 * 15 * 25, noisy);
    DecodeStats stats;
    auto units = decoder.decodeAll(reads, &stats);
    EXPECT_EQ(stats.units_decoded, 20u);
}

TEST_F(DecoderTest, MissingBlockReturnsNullopt)
{
    DecoderParams params;
    Decoder decoder(*partition_, params);
    auto content =
        decoder.decodeBlock(sequenceWholePool(20 * 15 * 20), 555);
    EXPECT_FALSE(content.has_value());
}

TEST_F(DecoderTest, ForeignReadsFiltered)
{
    // Reads from another partition (different primer) are dropped at
    // step 1 and don't corrupt decoding.
    PartitionConfig other_config;
    other_config.index_seed = 555;
    Partition other(other_config,
                    dna::Sequence("GGATCCGGATCCGGATCCGG"),
                    dna::Sequence("CAGTCAGTCAGTCAGTCAGT"), 4);
    sim::SynthesisParams synthesis;
    sim::Pool foreign = sim::synthesize(
        other.encodeFile(test::corpusBlocks(5, 5)), synthesis);
    pool_.mixIn(foreign);

    DecoderParams params;
    Decoder decoder(*partition_, params);
    DecodeStats stats;
    auto units =
        decoder.decodeAll(sequenceWholePool(25 * 15 * 20), &stats);
    EXPECT_LT(stats.reads_primer_matched, stats.reads_in);
    EXPECT_EQ(units.size(), 20u);
}

TEST_F(DecoderTest, StatsAreCoherent)
{
    DecoderParams params;
    Decoder decoder(*partition_, params);
    DecodeStats stats;
    decoder.decodeAll(sequenceWholePool(20 * 15 * 20), &stats);
    EXPECT_EQ(stats.reads_in, 20u * 15u * 20u);
    EXPECT_GT(stats.clusters_total, 0u);
    EXPECT_GE(stats.clusters_used, stats.strands_recovered);
    EXPECT_EQ(stats.units_attempted,
              stats.units_decoded + stats.units_failed);
}

TEST_F(DecoderTest, SteadyStateDecodePerformsNoArenaGrowth)
{
    // First decode warms every worker arena to its high-water mark;
    // after that, a whole decode pass over the same reads must not
    // allocate a single new arena chunk — the per-read scratch all
    // comes from rewound arena memory.
    DecoderParams params;
    Decoder decoder(*partition_, params);
    auto reads = sequenceWholePool(20 * 15 * 12);
    decoder.decodeAll(reads);
    const ArenaGlobalStats warm = Arena::globalStats();
    auto units = decoder.decodeAll(reads);
    const ArenaGlobalStats steady = Arena::globalStats();
    EXPECT_EQ(steady.chunks_allocated, warm.chunks_allocated);
    EXPECT_EQ(steady.bytes_reserved, warm.bytes_reserved);
    EXPECT_EQ(units.size(), 20u);
}

} // namespace
} // namespace dnastore::core
