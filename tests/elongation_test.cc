/**
 * @file
 * Tests for elongated-primer construction and validation.
 */

#include <gtest/gtest.h>

#include "index/sparse_index.h"
#include "primer/elongation.h"
#include "support/fixtures.h"

namespace dnastore::primer {
namespace {

const dna::Sequence &kMain = test::fwdPrimer();

TEST(ElongationTest, StemIsMainPlusSync)
{
    ElongationBuilder builder(kMain, dna::Base::A);
    EXPECT_EQ(builder.stem().size(), 21u);
    EXPECT_TRUE(builder.stem().startsWith(kMain));
    EXPECT_EQ(builder.stem()[20], 'A');
}

TEST(ElongationTest, BuildAppendsIndexPrefix)
{
    ElongationBuilder builder(kMain, dna::Base::A);
    dna::Sequence elongated = builder.build(dna::Sequence("GCATTG"));
    EXPECT_EQ(elongated.size(), 27u);
    EXPECT_TRUE(elongated.startsWith(builder.stem()));
    EXPECT_TRUE(elongated.endsWith(dna::Sequence("GCATTG")));
}

TEST(ElongationTest, PaperGeometryIs31Bases)
{
    // Section 6.5: 31-base elongated primers = 20 + 1 + 10.
    ElongationBuilder builder(kMain, dna::Base::A);
    index::SparseIndexTree tree(0x1dc0ffee, 5);
    dna::Sequence elongated = builder.build(tree.leafIndex(531));
    EXPECT_EQ(elongated.size(), 31u);
}

TEST(ElongationTest, SparseIndexValidatesAtEveryLength)
{
    ElongationBuilder builder(kMain, dna::Base::A);
    index::SparseIndexTree tree(12345, 5);
    for (uint64_t block : {0u, 7u, 144u, 531u, 1023u}) {
        ElongationReport report =
            validateElongations(builder, tree.leafIndex(block));
        // Sparse indexes have one strong base per 2-base chunk:
        // deviation of the index part is 0 at every even prefix.
        EXPECT_LE(report.worst_gc_deviation, 0.5) << "block " << block;
        EXPECT_LE(report.worst_homopolymer, 3u) << "block " << block;
    }
}

TEST(ElongationTest, DenseIndexFailsValidation)
{
    // The motivating failure: dense indexes (e.g. AAAAAAAAAA) break
    // GC balance and homopolymer limits when used as elongations.
    ElongationBuilder builder(kMain, dna::Base::A);
    ElongationReport report =
        validateElongations(builder, dna::Sequence("AAAAAAAAAA"));
    EXPECT_GT(report.worst_gc_deviation, 2.0);
    EXPECT_GT(report.worst_homopolymer, 3u);
}

} // namespace
} // namespace dnastore::primer
