/**
 * @file
 * Unit tests for the bump-pointer scratch arenas, plus the
 * steady-state guarantee the decode hot path relies on: once warm, a
 * kernel pass performs zero heap allocations — pinned both by the
 * arena's own chunk counter and by a global operator-new counter.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>

#include "common/arena.h"
#include "dna/distance.h"
#include "dna/sequence.h"

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

} // namespace

// Count every heap allocation made by this test binary. Only the
// allocating entry points need replacing; deletes stay paired with
// std::free.
void *
operator new(std::size_t size)
{
    ++g_heap_allocs;
    if (void *p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace dnastore {
namespace {

TEST(ArenaTest, AllocRespectsAlignment)
{
    Arena arena;
    for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{16}, size_t{32}, size_t{64}}) {
        // Odd-sized allocations in between force misaligned offsets.
        arena.alloc(3, 1);
        void *p = arena.alloc(align * 2, align);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
    auto *words = arena.allocArray<uint64_t>(5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(words) % alignof(uint64_t),
              0u);
}

TEST(ArenaTest, RewindReusesMemoryWithoutFreeing)
{
    Arena arena(1024);
    Arena::Mark mark = arena.mark();
    void *first = arena.alloc(100, 8);
    const size_t chunks = arena.chunkCount();
    const size_t reserved = arena.reservedBytes();
    arena.rewind(mark);
    void *second = arena.alloc(100, 8);
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(arena.reservedBytes(), reserved);
}

TEST(ArenaTest, GrowsChunksAndKeepsOldAllocationsStable)
{
    Arena arena(64);
    auto *small = arena.allocArray<uint8_t>(32);
    for (size_t i = 0; i < 32; ++i)
        small[i] = static_cast<uint8_t>(i);
    // Far larger than the initial chunk: must land in a new chunk
    // without moving the first allocation.
    auto *large = arena.allocArray<uint8_t>(64 * 1024);
    large[0] = 1;
    EXPECT_GE(arena.chunkCount(), 2u);
    EXPECT_GE(arena.reservedBytes(), size_t{64} * 1024 + 32);
    for (size_t i = 0; i < 32; ++i)
        EXPECT_EQ(small[i], static_cast<uint8_t>(i));
}

TEST(ArenaTest, WarmArenaServesScopesAllocationFree)
{
    Arena arena(256);
    // Warm-up pass establishes the high-water mark.
    {
        ArenaScope scope(arena);
        arena.alloc(4000, 8);
        arena.alloc(4000, 8);
    }
    const size_t chunks = arena.chunkCount();
    const uint64_t heap_before = g_heap_allocs.load();
    for (int pass = 0; pass < 100; ++pass) {
        ArenaScope scope(arena);
        arena.alloc(4000, 8);
        arena.alloc(4000, 8);
    }
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(g_heap_allocs.load(), heap_before);
}

TEST(ArenaTest, ScratchIsPerThread)
{
    Arena *main_arena = &Arena::scratch();
    EXPECT_EQ(main_arena, &Arena::scratch());
    Arena *other_arena = nullptr;
    std::thread t([&] { other_arena = &Arena::scratch(); });
    t.join();
    EXPECT_NE(other_arena, nullptr);
    EXPECT_NE(other_arena, main_arena);
}

TEST(ArenaTest, GlobalStatsCountChunks)
{
    ArenaGlobalStats before = Arena::globalStats();
    Arena arena(1024);
    arena.alloc(512, 8);
    ArenaGlobalStats after = Arena::globalStats();
    EXPECT_GE(after.chunks_allocated, before.chunks_allocated + 1);
    EXPECT_GE(after.bytes_reserved, before.bytes_reserved + 512);
}

/** The per-read kernels draw scratch from the thread's arena: after
 *  one warm-up call, repeated calls must touch neither the heap nor
 *  the arena chunk counter. */
TEST(ArenaSteadyStateTest, DistanceKernelsAreAllocationFree)
{
    const dna::Sequence a(
        "ACGTACGTTGCAACGTACGTTGCAACGTACGTTGCAACGTACGTTGCA");
    const dna::Sequence b(
        "ACGTACCTTGCAACGTACGTTGAAACGTACGTTGCAACGAACGTTGCA");
    const dna::Sequence primer("ACGTACGTTGCA");

    // Warm up every code path under test.
    size_t sink = 0;
    for (int i = 0; i < 3; ++i) {
        sink += dna::bandedLevenshtein(a, b, 8);
        sink += dna::alignPrimerToPrefix(primer, a, 6).distance;
        sink += dna::alignPrimerWeighted(primer, a, 6)
                    .template_consumed;
    }

    const uint64_t heap_before = g_heap_allocs.load();
    const ArenaGlobalStats arena_before = Arena::globalStats();
    for (int i = 0; i < 200; ++i) {
        sink += dna::bandedLevenshtein(a, b, 8);
        sink += dna::alignPrimerToPrefix(primer, a, 6).distance;
        sink += dna::alignPrimerWeighted(primer, a, 6)
                    .template_consumed;
    }
    EXPECT_EQ(g_heap_allocs.load(), heap_before)
        << "steady-state kernel pass hit the heap";
    EXPECT_EQ(Arena::globalStats().chunks_allocated,
              arena_before.chunks_allocated);
    EXPECT_NE(sink, size_t{0});
}

} // namespace
} // namespace dnastore
