/**
 * @file
 * Tests for the synthesis model (per-molecule yield distribution).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dna/distance.h"
#include "sim/synthesis.h"

namespace dnastore::sim {
namespace {

std::vector<DesignedMolecule>
makeOrder(size_t count)
{
    // Random 24-base designs: pairwise distances are large, so
    // single-base synthesis byproducts cannot collide with another
    // design's sequence.
    dnastore::Rng rng(0xde516);
    std::vector<DesignedMolecule> order;
    for (size_t i = 0; i < count; ++i) {
        std::vector<dna::Base> bases(24);
        for (dna::Base &base : bases)
            base = static_cast<dna::Base>(rng.nextBelow(4));
        DesignedMolecule molecule;
        molecule.seq = dna::Sequence(bases);
        molecule.info.block = i;
        order.push_back(std::move(molecule));
    }
    return order;
}

TEST(SynthesisTest, AllMoleculesPresent)
{
    SynthesisParams params;
    params.scale = 1e6;
    Pool pool = synthesize(makeOrder(100), params);
    EXPECT_EQ(pool.speciesCount(), 100u);
}

TEST(SynthesisTest, YieldNearScale)
{
    SynthesisParams params;
    params.scale = 1e6;
    params.sigma = 0.15;
    Pool pool = synthesize(makeOrder(500), params);
    double mean = pool.totalMass() / 500.0;
    EXPECT_NEAR(mean / params.scale, 1.0, 0.1);
}

TEST(SynthesisTest, SpreadWithinTwoXBand)
{
    // Figure 9a: molecules are represented uniformly within ~2x.
    SynthesisParams params;
    params.sigma = 0.15;
    Pool pool = synthesize(makeOrder(500), params);
    double lo = 1e300, hi = 0.0;
    for (const Species &s : pool.species()) {
        lo = std::min(lo, s.mass);
        hi = std::max(hi, s.mass);
    }
    EXPECT_LT(hi / lo, 3.5);  // generous band for 500 samples
}

TEST(SynthesisTest, DropoutRemovesMolecules)
{
    SynthesisParams params;
    params.dropout_rate = 0.2;
    Pool pool = synthesize(makeOrder(500), params);
    EXPECT_LT(pool.speciesCount(), 475u);
    EXPECT_GT(pool.speciesCount(), 325u);
}

TEST(SynthesisTest, Deterministic)
{
    SynthesisParams params;
    Pool a = synthesize(makeOrder(50), params);
    Pool b = synthesize(makeOrder(50), params);
    ASSERT_EQ(a.speciesCount(), b.speciesCount());
    for (size_t i = 0; i < a.speciesCount(); ++i)
        EXPECT_DOUBLE_EQ(a.species()[i].mass, b.species()[i].mass);
}

TEST(SynthesisTest, ByproductsCarveOutMass)
{
    SynthesisParams params;
    params.byproduct_fraction = 0.10;
    params.byproduct_variants = 2;
    std::vector<DesignedMolecule> order = makeOrder(50);
    Pool pool = synthesize(order, params);
    // Up to 3 species per design (some variants may collide).
    EXPECT_GT(pool.speciesCount(), 100u);
    EXPECT_LE(pool.speciesCount(), 150u);
    // Defect species hold exactly the configured mass fraction.
    double defect_fraction =
        pool.massFraction([&](const Species &s) {
            return s.seq != order[s.info.block].seq;
        });
    EXPECT_NEAR(defect_fraction, 0.10, 1e-9);
}

TEST(SynthesisTest, ByproductsAreSingleEditVariants)
{
    SynthesisParams params;
    params.byproduct_fraction = 0.05;
    params.byproduct_variants = 1;
    std::vector<DesignedMolecule> order = makeOrder(20);
    Pool pool = synthesize(order, params);
    for (const Species &s : pool.species()) {
        const dna::Sequence &design = order[s.info.block].seq;
        size_t dist = dna::levenshteinDistance(s.seq, design);
        EXPECT_LE(dist, 1u);
    }
}

TEST(SynthesisTest, VendorScaleDifference)
{
    // The paper's IDT pool was 50000x more concentrated than Twist.
    SynthesisParams twist;
    twist.scale = 1e6;
    SynthesisParams idt;
    idt.scale = 5e10;
    Pool twist_pool = synthesize(makeOrder(100), twist);
    Pool idt_pool = synthesize(makeOrder(100), idt);
    double ratio = idt_pool.totalMass() / twist_pool.totalMass();
    EXPECT_NEAR(ratio, 5e4, 5e3);
}

} // namespace
} // namespace dnastore::sim
