/**
 * @file
 * Tests for q-gram/MinHash read clustering.
 */

#include <array>

#include <gtest/gtest.h>

#include "cluster/clusterer.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace dnastore::cluster {
namespace {

dna::Sequence
randomSeq(dnastore::Rng &rng, size_t len)
{
    std::vector<dna::Base> bases(len);
    for (dna::Base &base : bases)
        base = static_cast<dna::Base>(rng.nextBelow(4));
    return dna::Sequence(bases);
}

/** Apply light IDS noise to a sequence. */
dna::Sequence
noisy(dnastore::Rng &rng, const dna::Sequence &seq, double rate)
{
    std::vector<dna::Base> out;
    for (size_t i = 0; i < seq.size(); ++i) {
        double roll = rng.nextDouble();
        if (roll < rate / 3) {
            continue;  // deletion
        } else if (roll < 2 * rate / 3) {
            out.push_back(static_cast<dna::Base>(rng.nextBelow(4)));
            out.push_back(seq.baseAt(i));  // insertion
        } else if (roll < rate) {
            out.push_back(static_cast<dna::Base>(rng.nextBelow(4)));
        } else {
            out.push_back(seq.baseAt(i));
        }
    }
    return dna::Sequence(out);
}

TEST(ClustererTest, SeparatesDistinctOrigins)
{
    dnastore::Rng rng(1);
    const size_t origins = 20;
    const size_t copies = 10;
    std::vector<dna::Sequence> centers;
    std::vector<dna::Sequence> reads;
    std::vector<size_t> truth;
    for (size_t o = 0; o < origins; ++o)
        centers.push_back(randomSeq(rng, 120));
    for (size_t o = 0; o < origins; ++o) {
        for (size_t c = 0; c < copies; ++c) {
            reads.push_back(noisy(rng, centers[o], 0.01));
            truth.push_back(o);
        }
    }

    ClustererParams params;
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_EQ(clusters.size(), origins);

    // Every cluster must be pure (all members share one origin).
    for (const Cluster &cluster : clusters) {
        size_t origin = truth[cluster.members.front()];
        for (size_t member : cluster.members)
            EXPECT_EQ(truth[member], origin);
        EXPECT_EQ(cluster.size(), copies);
    }
}

TEST(ClustererTest, SortedByDecreasingSize)
{
    dnastore::Rng rng(2);
    std::vector<dna::Sequence> reads;
    dna::Sequence big = randomSeq(rng, 100);
    dna::Sequence small = randomSeq(rng, 100);
    for (int i = 0; i < 30; ++i)
        reads.push_back(noisy(rng, big, 0.01));
    for (int i = 0; i < 5; ++i)
        reads.push_back(noisy(rng, small, 0.01));

    ClustererParams params;
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_GE(clusters.size(), 2u);
    EXPECT_GE(clusters[0].size(), clusters[1].size());
    EXPECT_EQ(clusters[0].size(), 30u);
}

TEST(ClustererTest, HighNoiseStillGroupsMostReads)
{
    dnastore::Rng rng(3);
    dna::Sequence center = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 50; ++i)
        reads.push_back(noisy(rng, center, 0.02));

    ClustererParams params;
    std::vector<Cluster> clusters = clusterReads(reads, params);
    EXPECT_GE(clusters[0].size(), 40u);
}

TEST(ClustererTest, EmptyInput)
{
    ClustererParams params;
    EXPECT_TRUE(clusterReads({}, params).empty());
}

TEST(ClustererTest, SingleRead)
{
    ClustererParams params;
    std::vector<dna::Sequence> reads = {dna::Sequence("ACGTACGTACGT")};
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].size(), 1u);
}

TEST(ClustererTest, ZeroSignatureBands)
{
    // Degenerate config: no bands means no buckets, no candidates,
    // and every read founds its own cluster — but it must not crash.
    ClustererParams params;
    params.signatures = 0;
    std::vector<dna::Sequence> reads = {dna::Sequence("ACGTACGT"),
                                        dna::Sequence("ACGTACGT")};
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_EQ(clusters.size(), 2u);
    for (const Cluster &cluster : clusters)
        EXPECT_EQ(cluster.size(), 1u);
}

/**
 * Regression: the candidate cap must hold across signature bands.
 *
 * The construction replicates the clusterer's salt derivation and its
 * q = 1 MinHash (the signature of a read is then determined by the
 * read's base SET: min over present bases of splitMix64(base ^ salt)).
 * With m0/m1 the globally minimal bases of bands 0/1, three reads are
 * built over disjoint alphabets:
 *
 *   A over {m0, x}: shares X's band-0 bucket (both contain m0), far
 *                   from X in edit distance;
 *   B over {m1, y}: shares X's band-1 bucket only, within threshold
 *                   of X;
 *   X = B with two substitutions introducing m0 and x.
 *
 * With max_candidates = 1, X's candidate gathering must stop at A
 * (band 0). The pre-fix code broke only the inner per-band loop, so
 * band 1 still pushed B past the cap and X joined B's cluster; with
 * the cap enforced across bands X founds its own cluster.
 */
TEST(ClustererTest, CandidateCapHoldsAcrossBands)
{
    // Find a seed whose bands 0 and 1 have distinct minimal bases.
    uint64_t seed = 0;
    int m0 = 0;
    int m1 = 0;
    auto hashOf = [](int base, uint64_t salt) {
        uint64_t state = static_cast<uint64_t>(base) ^ salt;
        return splitMix64(state);
    };
    auto argmin = [&](uint64_t salt) {
        int best = 0;
        for (int base = 1; base < 4; ++base) {
            if (hashOf(base, salt) < hashOf(best, salt))
                best = base;
        }
        return best;
    };
    for (uint64_t s = 1; s < 64; ++s) {
        Rng rng = Rng::deriveStream(s, "clusterer");
        uint64_t salt0 = rng.next();
        uint64_t salt1 = rng.next();
        m0 = argmin(salt0);
        m1 = argmin(salt1);
        if (m0 != m1) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u) << "no seed with distinct band minima";

    // x and y: the two bases outside {m0, m1}.
    std::array<int, 2> others{};
    size_t filled = 0;
    for (int base = 0; base < 4; ++base) {
        if (base != m0 && base != m1)
            others[filled++] = base;
    }
    ASSERT_EQ(filled, 2u);
    const int x = others[0];
    const int y = others[1];

    auto alternating = [](int a, int b, size_t len) {
        std::vector<dna::Base> bases(len);
        for (size_t i = 0; i < len; ++i)
            bases[i] = static_cast<dna::Base>(i % 2 ? b : a);
        return dna::Sequence(bases);
    };
    dna::Sequence read_a = alternating(m0, x, 60);
    dna::Sequence read_b = alternating(m1, y, 60);
    std::vector<dna::Base> x_bases(60);
    for (size_t i = 0; i < 60; ++i)
        x_bases[i] = static_cast<dna::Base>(i % 2 ? y : m1);
    x_bases[0] = static_cast<dna::Base>(m0);
    x_bases[1] = static_cast<dna::Base>(x);
    dna::Sequence read_x(x_bases);

    ClustererParams params;
    params.seed = seed;
    params.qgram = 1;
    params.signatures = 2;
    params.max_candidates = 1;
    params.distance_threshold = 8;
    std::vector<Cluster> clusters =
        clusterReads({read_a, read_b, read_x}, params);

    // X's only candidate is A (far away): X founds its own cluster.
    // The pre-fix overflow would have compared X against B too and
    // merged them into 2 clusters.
    ASSERT_EQ(clusters.size(), 3u);
    for (const Cluster &cluster : clusters)
        EXPECT_EQ(cluster.size(), 1u);
}

/**
 * Regression: hot buckets must not make clustering quadratic.
 *
 * With q = 1 every read containing all four bases gets the same
 * signature in every band, so all clusters pile into one bucket per
 * band. The reads are mutually far apart, so each founds its own
 * cluster and the hot buckets grow to n entries. The pre-fix code
 * ran an O(bucket) std::find per read per band — O(n^2) overall,
 * roughly an order of magnitude slower than the membership set at
 * this size in Release and diverging quadratically from there; under
 * the sanitizer CI jobs the quadratic path blows past the 120 s
 * CTest timeout, which is what makes this guard bite. The set keeps
 * the whole run linear.
 */
TEST(ClustererTest, HotBucketStaysLinear)
{
    dnastore::Rng rng(9);
    const size_t n = 60000;
    std::vector<dna::Sequence> reads;
    reads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::vector<dna::Base> bases(48);
        for (size_t j = 0; j + 4 < bases.size(); ++j)
            bases[j] = static_cast<dna::Base>(rng.nextBelow(4));
        // Guarantee all four bases so every read shares the q = 1
        // signature set.
        for (size_t j = 0; j < 4; ++j)
            bases[bases.size() - 4 + j] = static_cast<dna::Base>(j);
        reads.emplace_back(bases);
    }

    ClustererParams params;
    params.qgram = 1;
    params.max_candidates = 2;
    params.distance_threshold = 8;
    std::vector<Cluster> clusters = clusterReads(reads, params);

    // Random 44-base cores are pairwise far beyond the threshold:
    // every read founds a singleton cluster.
    EXPECT_GE(clusters.size(), n - 5);
    size_t members = 0;
    for (const Cluster &cluster : clusters)
        members += cluster.size();
    EXPECT_EQ(members, n);
}

TEST(ClustererTest, ThreadPoolDoesNotChangeClusters)
{
    dnastore::Rng rng(6);
    std::vector<dna::Sequence> reads;
    dna::Sequence center_a = randomSeq(rng, 120);
    dna::Sequence center_b = randomSeq(rng, 120);
    for (int i = 0; i < 40; ++i) {
        reads.push_back(noisy(rng, center_a, 0.02));
        reads.push_back(noisy(rng, center_b, 0.02));
    }

    ClustererParams params;
    std::vector<Cluster> sequential = clusterReads(reads, params);
    for (size_t threads : {2u, 5u, 8u}) {
        ThreadPool pool(threads);
        std::vector<Cluster> parallel =
            clusterReads(reads, params, &pool);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (size_t i = 0; i < parallel.size(); ++i) {
            EXPECT_EQ(parallel[i].members, sequential[i].members);
            EXPECT_EQ(parallel[i].representative,
                      sequential[i].representative);
        }
    }
}

TEST(ClustererTest, Deterministic)
{
    dnastore::Rng rng(4);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 40; ++i)
        reads.push_back(randomSeq(rng, 80));
    ClustererParams params;
    auto a = clusterReads(reads, params);
    auto b = clusterReads(reads, params);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].members, b[i].members);
}

} // namespace
} // namespace dnastore::cluster
