/**
 * @file
 * Tests for q-gram/MinHash read clustering.
 */

#include <gtest/gtest.h>

#include "cluster/clusterer.h"
#include "common/rng.h"

namespace dnastore::cluster {
namespace {

dna::Sequence
randomSeq(dnastore::Rng &rng, size_t len)
{
    std::vector<dna::Base> bases(len);
    for (dna::Base &base : bases)
        base = static_cast<dna::Base>(rng.nextBelow(4));
    return dna::Sequence(bases);
}

/** Apply light IDS noise to a sequence. */
dna::Sequence
noisy(dnastore::Rng &rng, const dna::Sequence &seq, double rate)
{
    std::vector<dna::Base> out;
    for (size_t i = 0; i < seq.size(); ++i) {
        double roll = rng.nextDouble();
        if (roll < rate / 3) {
            continue;  // deletion
        } else if (roll < 2 * rate / 3) {
            out.push_back(static_cast<dna::Base>(rng.nextBelow(4)));
            out.push_back(seq.baseAt(i));  // insertion
        } else if (roll < rate) {
            out.push_back(static_cast<dna::Base>(rng.nextBelow(4)));
        } else {
            out.push_back(seq.baseAt(i));
        }
    }
    return dna::Sequence(out);
}

TEST(ClustererTest, SeparatesDistinctOrigins)
{
    dnastore::Rng rng(1);
    const size_t origins = 20;
    const size_t copies = 10;
    std::vector<dna::Sequence> centers;
    std::vector<dna::Sequence> reads;
    std::vector<size_t> truth;
    for (size_t o = 0; o < origins; ++o)
        centers.push_back(randomSeq(rng, 120));
    for (size_t o = 0; o < origins; ++o) {
        for (size_t c = 0; c < copies; ++c) {
            reads.push_back(noisy(rng, centers[o], 0.01));
            truth.push_back(o);
        }
    }

    ClustererParams params;
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_EQ(clusters.size(), origins);

    // Every cluster must be pure (all members share one origin).
    for (const Cluster &cluster : clusters) {
        size_t origin = truth[cluster.members.front()];
        for (size_t member : cluster.members)
            EXPECT_EQ(truth[member], origin);
        EXPECT_EQ(cluster.size(), copies);
    }
}

TEST(ClustererTest, SortedByDecreasingSize)
{
    dnastore::Rng rng(2);
    std::vector<dna::Sequence> reads;
    dna::Sequence big = randomSeq(rng, 100);
    dna::Sequence small = randomSeq(rng, 100);
    for (int i = 0; i < 30; ++i)
        reads.push_back(noisy(rng, big, 0.01));
    for (int i = 0; i < 5; ++i)
        reads.push_back(noisy(rng, small, 0.01));

    ClustererParams params;
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_GE(clusters.size(), 2u);
    EXPECT_GE(clusters[0].size(), clusters[1].size());
    EXPECT_EQ(clusters[0].size(), 30u);
}

TEST(ClustererTest, HighNoiseStillGroupsMostReads)
{
    dnastore::Rng rng(3);
    dna::Sequence center = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 50; ++i)
        reads.push_back(noisy(rng, center, 0.02));

    ClustererParams params;
    std::vector<Cluster> clusters = clusterReads(reads, params);
    EXPECT_GE(clusters[0].size(), 40u);
}

TEST(ClustererTest, EmptyInput)
{
    ClustererParams params;
    EXPECT_TRUE(clusterReads({}, params).empty());
}

TEST(ClustererTest, SingleRead)
{
    ClustererParams params;
    std::vector<dna::Sequence> reads = {dna::Sequence("ACGTACGTACGT")};
    std::vector<Cluster> clusters = clusterReads(reads, params);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].size(), 1u);
}

TEST(ClustererTest, Deterministic)
{
    dnastore::Rng rng(4);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 40; ++i)
        reads.push_back(randomSeq(rng, 80));
    ClustererParams params;
    auto a = clusterReads(reads, params);
    auto b = clusterReads(reads, params);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].members, b[i].members);
}

} // namespace
} // namespace dnastore::cluster
