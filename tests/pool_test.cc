/**
 * @file
 * Unit tests for the Pool model.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/pool.h"

namespace dnastore::sim {
namespace {

SpeciesInfo
info(uint64_t block, uint8_t version = 0, uint8_t column = 0)
{
    SpeciesInfo result;
    result.file_id = 13;
    result.block = block;
    result.version = version;
    result.column = column;
    return result;
}

TEST(PoolTest, AddAndMergeBySequence)
{
    Pool pool;
    pool.add(dna::Sequence("ACGT"), info(1), 10.0);
    pool.add(dna::Sequence("ACGT"), info(1), 5.0);
    pool.add(dna::Sequence("TTTT"), info(2), 1.0);
    EXPECT_EQ(pool.speciesCount(), 2u);
    EXPECT_DOUBLE_EQ(pool.totalMass(), 16.0);
}

TEST(PoolTest, ScaleAndNormalize)
{
    Pool pool;
    pool.add(dna::Sequence("ACGT"), info(1), 10.0);
    pool.add(dna::Sequence("TTTT"), info(2), 30.0);
    pool.scale(0.5);
    EXPECT_DOUBLE_EQ(pool.totalMass(), 20.0);
    pool.normalizeTo(100.0);
    EXPECT_DOUBLE_EQ(pool.totalMass(), 100.0);
    EXPECT_DOUBLE_EQ(pool.species()[0].mass, 25.0);
}

TEST(PoolTest, MixInWithFactor)
{
    Pool a, b;
    a.add(dna::Sequence("ACGT"), info(1), 10.0);
    b.add(dna::Sequence("ACGT"), info(1), 100.0);
    b.add(dna::Sequence("GGGG"), info(2), 100.0);
    a.mixIn(b, 0.01);
    EXPECT_EQ(a.speciesCount(), 2u);
    EXPECT_DOUBLE_EQ(a.totalMass(), 12.0);
}

TEST(PoolTest, DropBelow)
{
    Pool pool;
    pool.add(dna::Sequence("ACGT"), info(1), 10.0);
    pool.add(dna::Sequence("GGGG"), info(2), 0.001);
    pool.dropBelow(0.01);
    EXPECT_EQ(pool.speciesCount(), 1u);
    // Index map must be rebuilt so merging still works.
    pool.add(dna::Sequence("ACGT"), info(1), 1.0);
    EXPECT_EQ(pool.speciesCount(), 1u);
    EXPECT_DOUBLE_EQ(pool.totalMass(), 11.0);
}

TEST(PoolTest, MassFraction)
{
    Pool pool;
    pool.add(dna::Sequence("ACGT"), info(531), 30.0);
    pool.add(dna::Sequence("GGGG"), info(144), 70.0);
    double fraction = pool.massFraction(
        [](const Species &s) { return s.info.block == 531; });
    EXPECT_DOUBLE_EQ(fraction, 0.3);
}

TEST(PoolTest, NegativeMassPanics)
{
    Pool pool;
    EXPECT_THROW(pool.add(dna::Sequence("ACGT"), info(1), -1.0),
                 dnastore::PanicError);
}

TEST(PoolTest, NormalizeEmptyPoolThrows)
{
    Pool pool;
    EXPECT_THROW(pool.normalizeTo(1.0), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::sim
