/**
 * @file
 * Unit tests for the seeded data scrambler.
 */

#include <gtest/gtest.h>

#include <array>

#include "codec/scrambler.h"
#include "common/rng.h"

namespace dnastore::codec {
namespace {

TEST(ScramblerTest, IsInvolution)
{
    Scrambler scrambler(99);
    std::vector<uint8_t> data = {1, 2, 3, 4, 5, 250, 251, 252, 0, 9};
    std::vector<uint8_t> original = data;
    scrambler.apply(data, 7);
    EXPECT_NE(data, original);
    scrambler.apply(data, 7);
    EXPECT_EQ(data, original);
}

TEST(ScramblerTest, StreamsAreIndependent)
{
    Scrambler scrambler(99);
    std::vector<uint8_t> zero(32, 0);
    auto a = scrambler.applied(zero, 1);
    auto b = scrambler.applied(zero, 2);
    EXPECT_NE(a, b);
}

TEST(ScramblerTest, SeedsAreIndependent)
{
    std::vector<uint8_t> zero(32, 0);
    auto a = Scrambler(1).applied(zero, 0);
    auto b = Scrambler(2).applied(zero, 0);
    EXPECT_NE(a, b);
}

TEST(ScramblerTest, OutputLooksBalanced)
{
    // Scrambling all-zero data should yield roughly uniform bytes,
    // which is what gives the paper's unconstrained coding its
    // statistical GC balance.
    Scrambler scrambler(1234);
    std::vector<uint8_t> data(4096, 0);
    scrambler.apply(data, 0);
    std::array<size_t, 4> two_bit_counts = {0, 0, 0, 0};
    for (uint8_t byte : data) {
        for (int shift = 0; shift < 8; shift += 2)
            ++two_bit_counts[(byte >> shift) & 0x3];
    }
    double total = 4096 * 4;
    for (size_t count : two_bit_counts) {
        EXPECT_NEAR(static_cast<double>(count) / total, 0.25, 0.02);
    }
}

TEST(ScramblerTest, EmptyBufferIsFine)
{
    Scrambler scrambler(5);
    std::vector<uint8_t> empty;
    EXPECT_NO_THROW(scrambler.apply(empty, 0));
    EXPECT_TRUE(empty.empty());
}

} // namespace
} // namespace dnastore::codec
