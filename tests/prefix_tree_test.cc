/**
 * @file
 * Tests for dense prefix-tree range covers (Section 3.1).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "index/prefix_tree.h"

namespace dnastore::index {
namespace {

/** Expand a cover back to the set of leaves it addresses. */
std::set<uint64_t>
expand(const std::vector<Prefix> &cover, size_t depth)
{
    std::set<uint64_t> leaves;
    for (const Prefix &prefix : cover) {
        uint64_t first = firstLeafUnder(prefix, depth);
        uint64_t count = leavesUnder(prefix, depth);
        for (uint64_t i = 0; i < count; ++i)
            leaves.insert(first + i);
    }
    return leaves;
}

TEST(CoverTest, PaperExample)
{
    // Section 3.1: AAA..AGT (leaves 0..11 at depth 3) is covered by
    // {AA, AC, AG} and the common prefix is A.
    std::vector<Prefix> cover = coverRange(0, 11, 3);
    ASSERT_EQ(cover.size(), 3u);
    EXPECT_EQ(cover[0], (Prefix{0, 0}));
    EXPECT_EQ(cover[1], (Prefix{0, 1}));
    EXPECT_EQ(cover[2], (Prefix{0, 2}));
    EXPECT_EQ(commonPrefix(0, 11, 3), (Prefix{0}));
}

TEST(CoverTest, SingleLeaf)
{
    std::vector<Prefix> cover = coverRange(5, 5, 3);
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_EQ(cover[0].size(), 3u);
    EXPECT_EQ(firstLeafUnder(cover[0], 3), 5u);
}

TEST(CoverTest, WholeSpaceIsEmptyPrefix)
{
    std::vector<Prefix> cover = coverRange(0, 63, 3);
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_TRUE(cover[0].empty());
}

TEST(CoverTest, CoverIsExactAndMinimalish)
{
    const size_t depth = 5;
    for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 0},     {0, 1023}, {1, 1022}, {100, 531},
             {512, 767}, {3, 3},    {1000, 1023}}) {
        std::vector<Prefix> cover = coverRange(lo, hi, depth);
        std::set<uint64_t> leaves = expand(cover, depth);
        EXPECT_EQ(leaves.size(), hi - lo + 1);
        EXPECT_EQ(*leaves.begin(), lo);
        EXPECT_EQ(*leaves.rbegin(), hi);
        // A base-4 cover needs at most 3 prefixes per level boundary.
        EXPECT_LE(cover.size(), 6 * depth);
    }
}

TEST(CoverTest, CommonPrefixCoversRange)
{
    const size_t depth = 5;
    Prefix prefix = commonPrefix(100, 531, depth);
    uint64_t first = firstLeafUnder(prefix, depth);
    uint64_t count = leavesUnder(prefix, depth);
    EXPECT_LE(first, 100u);
    EXPECT_GE(first + count - 1, 531u);
}

TEST(CoverTest, InvalidRangesThrow)
{
    EXPECT_THROW(coverRange(5, 4, 3), dnastore::FatalError);
    EXPECT_THROW(coverRange(0, 64, 3), dnastore::FatalError);
}

TEST(CoverTest, LeavesUnderAndFirstLeaf)
{
    EXPECT_EQ(leavesUnder({}, 3), 64u);
    EXPECT_EQ(leavesUnder({2}, 3), 16u);
    EXPECT_EQ(firstLeafUnder({2}, 3), 32u);
    EXPECT_EQ(leavesUnder({2, 1, 3}, 3), 1u);
    EXPECT_EQ(firstLeafUnder({2, 1, 3}, 3), 39u);
}

} // namespace
} // namespace dnastore::index
