/**
 * @file
 * Per-tenant fair-scheduling contract tests for DecodeService.
 *
 * Everything here is asserted exactly, not statistically: the
 * SchedulerHarness scripts a contended backlog against a paused
 * dispatcher and a virtual clock, so WDRR dispatch sequences, token
 * bucket refill decisions, and starvation bounds are literal
 * expectations that hold for any service pool size.
 *
 * Pinned contracts:
 *  - WDRR ratio: weights 1:1, 3:1, and 1:2:4 yield exactly those
 *    dispatch ratios under saturation, for service threads {1,2,8};
 *  - token bucket: starts full, refills at `rate` on the service
 *    clock, all-or-nothing per batch, zero-burst admits nothing,
 *    burst beyond the queue depth throttles nothing (the depth stage
 *    sheds with Overloaded instead, and those tokens stay spent);
 *  - starvation-freedom: a flooding tenant delays others by at most
 *    one WDRR round;
 *  - backward compat: the default tenant alone is plain FIFO with
 *    the pre-tenant metric set and byte-identical real decodes.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <thread>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/decode_service.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"
#include "support/scheduler_harness.h"

namespace dnastore::core {
namespace {

using test::DispatchRecord;
using test::SchedulerHarness;

/** All suites share the canonical partition + decoder through
 *  test::SchedulerFixture instead of re-wiring clock_us/on_dispatch
 *  by hand (see tests/support/scheduler_harness.h). */
using FairSchedulingTest = test::SchedulerFixture;

TEST_F(FairSchedulingTest, EqualWeightsAlternateStrictly)
{
    DecodeServiceParams params;
    params.threads = 2;
    params.tenants[1].weight = 1;
    params.tenants[2].weight = 1;
    SchedulerHarness &harness = this->harness(params);

    constexpr size_t kEach = 6;
    for (size_t i = 0; i < kEach; ++i)
        harness.submitOne(1);
    for (size_t i = 0; i < kEach; ++i)
        harness.submitOne(2);
    harness.resume();
    harness.drain();

    std::vector<DispatchRecord> seq = harness.dispatches();
    ASSERT_EQ(seq.size(), 2 * kEach);
    // Tenant 1 activated first, so the round order is 1,2,1,2,...
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i].tenant, i % 2 == 0 ? 1u : 2u)
            << "position " << i;
}

TEST_F(FairSchedulingTest, ThreeToOneWeightsDispatchThreeToOne)
{
    // The acceptance pin: saturating 2-tenant load, weights 3:1,
    // dispatch counts 3:1 exact (±1 batch) for pool sizes {1,2,8}.
    for (size_t threads : {1u, 2u, 8u}) {
        DecodeServiceParams params;
        params.threads = threads;
        params.tenants[1].weight = 3;
        params.tenants[2].weight = 1;
        SchedulerHarness &harness = this->harness(params);

        constexpr size_t kHeavy = 12;
        constexpr size_t kLight = 4;
        for (size_t i = 0; i < kHeavy; ++i)
            harness.submitOne(1);
        for (size_t i = 0; i < kLight; ++i)
            harness.submitOne(2);
        harness.resume();
        harness.drain();

        std::vector<DispatchRecord> seq = harness.dispatches();
        ASSERT_EQ(seq.size(), kHeavy + kLight) << "threads=" << threads;

        // Literal round structure: 3 heavy then 1 light, repeated.
        for (size_t i = 0; i < seq.size(); ++i)
            EXPECT_EQ(seq[i].tenant, i % 4 == 3 ? 2u : 1u)
                << "threads=" << threads << " position " << i;

        // The acceptance criterion as stated: in every saturated
        // prefix, per-tenant dispatch counts match 3:1 within ±1
        // batch of the light tenant's share.
        size_t heavy = 0;
        size_t light = 0;
        for (size_t i = 0; i < seq.size(); ++i) {
            heavy += seq[i].tenant == 1 ? 1 : 0;
            light += seq[i].tenant == 2 ? 1 : 0;
            const double expected_light =
                static_cast<double>(heavy) / 3.0;
            EXPECT_LE(
                std::abs(static_cast<double>(light) - expected_light),
                1.0)
                << "threads=" << threads << " prefix " << i;
        }
    }
}

TEST_F(FairSchedulingTest, OneTwoFourWeightsDispatchOneTwoFour)
{
    DecodeServiceParams params;
    params.threads = 4;
    params.tenants[1].weight = 1;
    params.tenants[2].weight = 2;
    params.tenants[3].weight = 4;
    SchedulerHarness &harness = this->harness(params);

    constexpr size_t kRounds = 4;
    for (size_t i = 0; i < 1 * kRounds; ++i)
        harness.submitOne(1);
    for (size_t i = 0; i < 2 * kRounds; ++i)
        harness.submitOne(2);
    for (size_t i = 0; i < 4 * kRounds; ++i)
        harness.submitOne(3);
    harness.resume();
    harness.drain();

    // Each WDRR round serves 1, 2, 2, 3, 3, 3, 3 in activation
    // order; kRounds full rounds drain the backlog exactly.
    const std::vector<TenantId> round = {1, 2, 2, 3, 3, 3, 3};
    std::vector<DispatchRecord> seq = harness.dispatches();
    ASSERT_EQ(seq.size(), round.size() * kRounds);
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i].tenant, round[i % round.size()])
            << "position " << i;
}

TEST_F(FairSchedulingTest, TokenBucketRefillsExactlyOnVirtualClock)
{
    DecodeServiceParams params;
    params.threads = 2;
    params.tenants[7].rate = 1.0;   // one request per second
    params.tenants[7].burst = 2.0;  // starts full with two
    SchedulerHarness &harness = this->harness(params);
    // Bucket decisions are made at submit time against the virtual
    // clock; the dispatcher can run freely without perturbing them.
    harness.resume();

    // t = 0: the bucket holds exactly its burst.
    size_t first = harness.submitOne(7);
    size_t second = harness.submitOne(7);
    size_t dry = harness.submitOne(7);
    EXPECT_EQ(harness.statusOf(first), DecodeStatus::Ok)
        << "bucket starts full";
    EXPECT_EQ(harness.statusOf(second), DecodeStatus::Ok);
    EXPECT_EQ(harness.statusOf(dry), DecodeStatus::Throttled);

    // One microsecond short of a full token: still throttled.
    harness.clock().advanceUs(999'999);
    EXPECT_EQ(harness.statusOf(harness.submitOne(7)),
              DecodeStatus::Throttled);

    // The last microsecond completes the token.
    harness.clock().advanceUs(1);
    EXPECT_EQ(harness.statusOf(harness.submitOne(7)),
              DecodeStatus::Ok);

    // A long idle period caps at burst, never beyond.
    harness.clock().advanceUs(10'000'000);
    EXPECT_EQ(harness.statusOf(harness.submitOne(7)),
              DecodeStatus::Ok);
    EXPECT_EQ(harness.statusOf(harness.submitOne(7)),
              DecodeStatus::Ok);
    EXPECT_EQ(harness.statusOf(harness.submitOne(7)),
              DecodeStatus::Throttled);
    harness.drain();
}

TEST_F(FairSchedulingTest, ZeroBurstAdmitsNothing)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 1;
    params.metrics = &registry;
    params.tenants[3].rate = 5.0;
    params.tenants[3].burst = 0.0;  // a rate with nowhere to pool
    SchedulerHarness &harness = this->harness(params);

    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(harness.statusOf(harness.submitOne(3)),
                  DecodeStatus::Throttled);
    // No amount of refill helps: the bucket caps at zero capacity.
    harness.clock().advanceUs(60'000'000);
    EXPECT_EQ(harness.statusOf(harness.submitOne(3)),
              DecodeStatus::Throttled);

    // The default tenant on the same service is untouched.
    size_t ok = harness.submitOne(kDefaultTenant);
    harness.resume();
    EXPECT_EQ(harness.statusOf(ok), DecodeStatus::Ok);
    harness.drain();

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.3.requests_throttled"),
        4u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.3.requests_admitted"),
        0u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_throttled"),
              4u);
}

TEST_F(FairSchedulingTest, BurstBeyondQueueDepthShedsAsOverloadedNotThrottled)
{
    DecodeServiceParams params;
    params.threads = 1;
    params.max_queue_depth = 2;
    params.overflow = OverflowPolicy::Reject;
    params.tenants[4].burst = 8.0;  // more tokens than queue slots
    SchedulerHarness &harness = this->harness(params);

    // All four pass the bucket (8 tokens); the depth stage admits
    // two and sheds two — as Overloaded, not Throttled. Shed futures
    // resolve immediately; the admitted ones are only awaited after
    // the paused dispatcher is released.
    size_t first = harness.submitOne(4);
    size_t kept = harness.submitOne(4);
    size_t shed_a = harness.submitOne(4);
    size_t shed_b = harness.submitOne(4);
    EXPECT_EQ(harness.statusOf(shed_a), DecodeStatus::Overloaded);
    EXPECT_EQ(harness.statusOf(shed_b), DecodeStatus::Overloaded);

    harness.resume();
    EXPECT_EQ(harness.statusOf(first), DecodeStatus::Ok);
    EXPECT_EQ(harness.statusOf(kept), DecodeStatus::Ok);
    harness.drain();

    // The two overload-shed batches still spent their tokens
    // (shedding is load, too): with rate 0 only 4 of the original 8
    // remain, so four more submissions drain the bucket dry and the
    // ninth overall is throttled.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(harness.statusOf(harness.submitOne(4)),
                  DecodeStatus::Ok)
            << "token " << i;
    EXPECT_EQ(harness.statusOf(harness.submitOne(4)),
              DecodeStatus::Throttled);
}

TEST_F(FairSchedulingTest, FloodingTenantCannotStarveOthers)
{
    DecodeServiceParams params;
    params.threads = 2;
    params.tenants[1].weight = 4;  // the flood gets MORE weight
    params.tenants[2].weight = 1;
    SchedulerHarness &harness = this->harness(params);

    constexpr size_t kFlood = 40;
    for (size_t i = 0; i < kFlood; ++i)
        harness.submitOne(1);
    size_t victim_a = harness.submitOne(2);
    size_t victim_b = harness.submitOne(2);
    harness.resume();
    harness.drain();
    EXPECT_EQ(harness.statusOf(victim_a), DecodeStatus::Ok);
    EXPECT_EQ(harness.statusOf(victim_b), DecodeStatus::Ok);

    // The victim is served once per round: its two batches land at
    // positions 4 and 9 of the dispatch order, never later — a
    // 40-deep flood delays it by exactly one weight-4 turn.
    std::vector<DispatchRecord> seq = harness.dispatches();
    ASSERT_EQ(seq.size(), kFlood + 2);
    std::vector<size_t> victim_positions;
    for (size_t i = 0; i < seq.size(); ++i)
        if (seq[i].tenant == 2)
            victim_positions.push_back(i);
    ASSERT_EQ(victim_positions.size(), 2u);
    EXPECT_EQ(victim_positions[0], 4u);
    EXPECT_EQ(victim_positions[1], 9u);
}

TEST_F(FairSchedulingTest, PerTenantQueueDepthCapRejectsOnlyThatTenant)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 1;
    params.overflow = OverflowPolicy::Reject;
    params.metrics = &registry;
    params.tenants[5].max_queue_depth = 1;
    params.tenants[6].weight = 1;
    SchedulerHarness &harness = this->harness(params);

    size_t capped = harness.submitOne(5);
    size_t over = harness.submitOne(5);   // tenant 5 is at its cap
    size_t other = harness.submitOne(6);  // tenant 6 is not
    EXPECT_EQ(harness.statusOf(over), DecodeStatus::Overloaded);

    harness.resume();
    EXPECT_EQ(harness.statusOf(capped), DecodeStatus::Ok);
    EXPECT_EQ(harness.statusOf(other), DecodeStatus::Ok);
    harness.drain();

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.5.requests_rejected"),
        1u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.6.requests_rejected"),
        0u);

    // A batch that can never fit the tenant cap fails loudly at the
    // call site instead of wedging forever.
    std::vector<DecodeRequest> batch(2);
    for (DecodeRequest &request : batch) {
        request.decoder = &harness.decoder();
        request.tenant = 5;
    }
    EXPECT_THROW(harness.service().submitBatch(std::move(batch)),
                 FatalError);
}

TEST_F(FairSchedulingTest, MixedTenantBatchThrows)
{
    SchedulerHarness &harness = this->harness({});
    std::vector<DecodeRequest> batch(2);
    batch[0].decoder = &harness.decoder();
    batch[0].tenant = 1;
    batch[1].decoder = &harness.decoder();
    batch[1].tenant = 2;
    EXPECT_THROW(harness.service().submitBatch(std::move(batch)),
                 FatalError);
    harness.resume();
}

TEST_F(FairSchedulingTest, ZeroWeightTenantIsRejectedAtConstruction)
{
    DecodeServiceParams params;
    params.tenants[1].weight = 0;
    EXPECT_THROW(DecodeService service(params), FatalError);
}

TEST_F(FairSchedulingTest, DefaultTenantAloneStaysFifoWithLegacyMetrics)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 2;
    params.metrics = &registry;
    SchedulerHarness &harness = this->harness(params);

    constexpr size_t kSubmissions = 6;
    for (size_t i = 0; i < kSubmissions; ++i)
        harness.submitOne(kDefaultTenant);
    harness.resume();
    harness.drain();

    // One queue, weight 1: WDRR degenerates to FIFO.
    std::vector<DispatchRecord> seq = harness.dispatches();
    ASSERT_EQ(seq.size(), kSubmissions);
    for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].tenant, kDefaultTenant);
        EXPECT_EQ(seq[i].requests, 1u);
    }

    // The unconfigured default tenant exports exactly the pre-tenant
    // metric set: no decode_service.tenant.* instruments appear.
    telemetry::MetricsSnapshot snap = registry.snapshot();
    for (const auto &[name, value] : snap.counters) {
        (void)value;
        EXPECT_EQ(name.find("decode_service.tenant."),
                  std::string::npos)
            << name;
    }
    for (const auto &[name, histogram] : snap.histograms) {
        (void)histogram;
        EXPECT_EQ(name.find("decode_service.tenant."),
                  std::string::npos)
            << name;
    }
    EXPECT_EQ(snap.counters.at("decode_service.requests_submitted"),
              kSubmissions);
    EXPECT_EQ(snap.counters.at("decode_service.requests_decoded"),
              kSubmissions);
    EXPECT_EQ(snap.counters.at("decode_service.requests_throttled"),
              0u);
}

TEST_F(FairSchedulingTest, PerTenantCountersAndLatencyHistograms)
{
    telemetry::MetricsRegistry registry;
    DecodeServiceParams params;
    params.threads = 2;
    params.metrics = &registry;
    params.tenants[1].weight = 2;
    params.tenants[2].burst = 1.0;
    SchedulerHarness &harness = this->harness(params);

    for (int i = 0; i < 3; ++i)
        harness.submitOne(1);
    harness.submitOne(2);                    // spends the only token
    size_t throttled = harness.submitOne(2);
    EXPECT_EQ(harness.statusOf(throttled), DecodeStatus::Throttled);
    harness.resume();
    harness.drain();

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.requests_admitted"),
        3u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.batches_dispatched"),
        3u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.1.requests_throttled"),
        0u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_admitted"),
        1u);
    EXPECT_EQ(
        snap.counters.at("decode_service.tenant.2.requests_throttled"),
        1u);
    EXPECT_EQ(
        snap.histograms.at("decode_service.tenant.1.queue_latency_us")
            .count,
        3u);
    EXPECT_EQ(
        snap.histograms.at("decode_service.tenant.2.queue_latency_us")
            .count,
        1u);
    // The global view still sums every tenant.
    EXPECT_EQ(snap.counters.at("decode_service.requests_submitted"),
              4u);
    EXPECT_EQ(snap.counters.at("decode_service.requests_throttled"),
              1u);
}

/** Real-decode backward compat: tenancy schedules work, it never
 *  changes what a decode returns. One small partition, real noisy
 *  reads, outcomes pinned against sequential decodeAll for two
 *  tenants and the default, across pool sizes. */
TEST_F(FairSchedulingTest, RealDecodesAreByteIdenticalUnderTenancy)
{
    constexpr size_t kBlocks = 3;
    constexpr size_t kCoverage = 14;

    const test::PrimerPair &primers = test::primerPair(1);
    Partition partition(test::partitionConfig(1), primers.forward,
                        primers.reverse, 21);
    Bytes data = test::corpusBlocks(kBlocks, test::kTestSeed + 21);
    sim::SynthesisParams synthesis;
    synthesis.seed = 2100;
    sim::Pool pool = sim::synthesize(partition.encodeFile(data),
                                     synthesis);
    sim::SequencerParams sequencer;
    sequencer.sub_rate = 0.01;
    sequencer.ins_rate = 0.002;
    sequencer.del_rate = 0.002;
    sequencer.seed = 47;
    std::vector<sim::Read> reads = sim::sequencePool(
        pool, kBlocks * partition.config().rs_n * kCoverage,
        sequencer);

    DecoderParams decoder_params;
    decoder_params.threads = 1;
    Decoder decoder(partition, decoder_params);
    DecodeOutcome golden;
    golden.units = decoder.decodeAll(reads, &golden.stats);

    for (size_t threads : {1u, 2u, 8u}) {
        DecodeServiceParams params;
        params.threads = threads;
        params.tenants[1].weight = 3;
        params.tenants[2].weight = 1;
        DecodeService service(params);
        for (TenantId tenant : {kDefaultTenant, TenantId{1},
                                TenantId{2}}) {
            DecodeOutcome outcome =
                service.submit(decoder, reads, tenant).get();
            EXPECT_EQ(outcome, golden)
                << "threads=" << threads << " tenant=" << tenant;
        }
    }
}

/** Pin: shutdown() while the dispatcher is paused and Block-policy
 *  submitters are parked in the ticket line. Every parked waiter is
 *  woken and fails with FatalError (never admitted, never hung), the
 *  already-admitted backlog still drains to completion, and the
 *  ticket line ends empty. */
TEST_F(FairSchedulingTest, ShutdownWhilePausedReleasesParkedSubmitters)
{
    const Decoder &decoder = this->decoder();

    DecodeServiceParams params;
    params.threads = 2;
    params.max_queue_depth = 2;
    params.overflow = OverflowPolicy::Block;
    params.start_paused = true;
    DecodeService service(params);

    // Fill the queue while nothing dispatches.
    std::future<DecodeOutcome> first = service.submit(decoder, {});
    std::future<DecodeOutcome> second = service.submit(decoder, {});
    ASSERT_EQ(service.inFlightRequests(), 2u);

    constexpr size_t kParked = 3;
    std::atomic<size_t> failures{0};
    std::vector<std::thread> parked;
    for (size_t w = 0; w < kParked; ++w) {
        parked.emplace_back([&] {
            try {
                service.submit(decoder, {});
            } catch (const FatalError &) {
                failures.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (service.blockedSubmitters() < kParked &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    ASSERT_EQ(service.blockedSubmitters(), kParked);

    // With dispatch paused no slot can free before shutdown lands,
    // so every waiter's wake reason is deterministically
    // !accepting_: all three must fail, none may be admitted.
    service.shutdown();
    for (std::thread &waiter : parked)
        waiter.join();
    EXPECT_EQ(failures.load(), kParked);
    EXPECT_EQ(service.blockedSubmitters(), 0u);

    // The admitted backlog drained instead of being dropped.
    EXPECT_EQ(first.get().status, DecodeStatus::Ok);
    EXPECT_EQ(second.get().status, DecodeStatus::Ok);
}

} // namespace
} // namespace dnastore::core
