/**
 * @file
 * Unit and property tests for RS(15,11) errors-and-erasures decoding.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "ecc/reed_solomon.h"

namespace dnastore::ecc {
namespace {

std::vector<uint8_t>
randomData(dnastore::Rng &rng, unsigned k)
{
    std::vector<uint8_t> data(k);
    for (uint8_t &symbol : data)
        symbol = static_cast<uint8_t>(rng.nextBelow(16));
    return data;
}

TEST(ReedSolomonTest, EncodeIsSystematic)
{
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(1);
    std::vector<uint8_t> data = randomData(rng, 11);
    std::vector<uint8_t> codeword = rs.encode(data);
    ASSERT_EQ(codeword.size(), 15u);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), codeword.begin()));
}

TEST(ReedSolomonTest, CleanWordDecodes)
{
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(2);
    std::vector<uint8_t> data = randomData(rng, 11);
    std::vector<uint8_t> codeword = rs.encode(data);
    RsDecodeResult result = rs.decode(codeword);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.codeword, codeword);
    EXPECT_EQ(result.errors_corrected, 0u);
}

TEST(ReedSolomonTest, CorrectsSingleError)
{
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data = randomData(rng, 11);
        std::vector<uint8_t> codeword = rs.encode(data);
        std::vector<uint8_t> corrupted = codeword;
        size_t pos = rng.nextBelow(15);
        corrupted[pos] ^= static_cast<uint8_t>(1 + rng.nextBelow(15));
        RsDecodeResult result = rs.decode(corrupted);
        ASSERT_TRUE(result.ok()) << "trial " << trial;
        EXPECT_EQ(*result.codeword, codeword);
        EXPECT_EQ(result.errors_corrected, 1u);
    }
}

TEST(ReedSolomonTest, CorrectsTwoErrors)
{
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(4);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data = randomData(rng, 11);
        std::vector<uint8_t> codeword = rs.encode(data);
        std::vector<uint8_t> corrupted = codeword;
        size_t p1 = rng.nextBelow(15);
        size_t p2 = (p1 + 1 + rng.nextBelow(14)) % 15;
        corrupted[p1] ^= static_cast<uint8_t>(1 + rng.nextBelow(15));
        corrupted[p2] ^= static_cast<uint8_t>(1 + rng.nextBelow(15));
        RsDecodeResult result = rs.decode(corrupted);
        ASSERT_TRUE(result.ok()) << "trial " << trial;
        EXPECT_EQ(*result.codeword, codeword);
    }
}

TEST(ReedSolomonTest, ThreeErrorsRejectedOrMiscorrected)
{
    // Beyond half the minimum distance: decoding must not return the
    // original pretending success is guaranteed; it either fails or
    // returns some codeword. It must never crash.
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data = randomData(rng, 11);
        std::vector<uint8_t> corrupted = rs.encode(data);
        for (size_t e = 0; e < 3; ++e) {
            corrupted[(trial + 5 * e) % 15] ^=
                static_cast<uint8_t>(1 + rng.nextBelow(15));
        }
        EXPECT_NO_THROW(rs.decode(corrupted));
    }
}

TEST(ReedSolomonTest, CorrectsFourErasures)
{
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(6);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data = randomData(rng, 11);
        std::vector<uint8_t> codeword = rs.encode(data);
        std::vector<uint8_t> corrupted = codeword;
        std::vector<size_t> positions = {0, 1, 2, 3, 4, 5, 6, 7,
                                         8, 9, 10, 11, 12, 13, 14};
        rng.shuffle(positions);
        std::vector<size_t> erasures(positions.begin(),
                                     positions.begin() + 4);
        for (size_t pos : erasures)
            corrupted[pos] = static_cast<uint8_t>(rng.nextBelow(16));
        RsDecodeResult result = rs.decode(corrupted, erasures);
        ASSERT_TRUE(result.ok()) << "trial " << trial;
        EXPECT_EQ(*result.codeword, codeword);
        EXPECT_EQ(result.erasures_filled, 4u);
    }
}

TEST(ReedSolomonTest, CorrectsOneErrorPlusTwoErasures)
{
    // 2*errors + erasures = 4 == n - k.
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data = randomData(rng, 11);
        std::vector<uint8_t> codeword = rs.encode(data);
        std::vector<uint8_t> corrupted = codeword;
        std::vector<size_t> positions = {0, 1, 2, 3, 4, 5, 6, 7,
                                         8, 9, 10, 11, 12, 13, 14};
        rng.shuffle(positions);
        std::vector<size_t> erasures = {positions[0], positions[1]};
        corrupted[positions[0]] =
            static_cast<uint8_t>(rng.nextBelow(16));
        corrupted[positions[1]] =
            static_cast<uint8_t>(rng.nextBelow(16));
        corrupted[positions[2]] ^=
            static_cast<uint8_t>(1 + rng.nextBelow(15));
        RsDecodeResult result = rs.decode(corrupted, erasures);
        ASSERT_TRUE(result.ok()) << "trial " << trial;
        EXPECT_EQ(*result.codeword, codeword);
    }
}

TEST(ReedSolomonTest, TooManyErasuresFails)
{
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(8);
    std::vector<uint8_t> codeword = rs.encode(randomData(rng, 11));
    std::vector<size_t> erasures = {0, 1, 2, 3, 4};
    RsDecodeResult result = rs.decode(codeword, erasures);
    EXPECT_FALSE(result.ok());
}

TEST(ReedSolomonTest, OtherGeometries)
{
    // RS(7, 3): corrects 2 errors.
    ReedSolomon rs(7, 3);
    dnastore::Rng rng(9);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<uint8_t> data = randomData(rng, 3);
        std::vector<uint8_t> codeword = rs.encode(data);
        std::vector<uint8_t> corrupted = codeword;
        corrupted[trial % 7] ^=
            static_cast<uint8_t>(1 + rng.nextBelow(15));
        corrupted[(trial + 3) % 7] ^=
            static_cast<uint8_t>(1 + rng.nextBelow(15));
        RsDecodeResult result = rs.decode(corrupted);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(*result.codeword, codeword);
    }
}

TEST(ReedSolomonTest, RejectsBadParameters)
{
    EXPECT_THROW(ReedSolomon(16, 11), dnastore::FatalError);
    EXPECT_THROW(ReedSolomon(15, 15), dnastore::FatalError);
    ReedSolomon rs(15, 11);
    EXPECT_THROW(rs.encode(std::vector<uint8_t>(10)),
                 dnastore::FatalError);
    EXPECT_THROW(rs.decode(std::vector<uint8_t>(14)),
                 dnastore::FatalError);
}

/** Property sweep: every (errors, erasures) combo within capability. */
class RsCapabilityTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(RsCapabilityTest, CorrectsWithinCapability)
{
    auto [errors, erasures] = GetParam();
    ASSERT_LE(2 * errors + erasures, 4);
    ReedSolomon rs(15, 11);
    dnastore::Rng rng(100 + errors * 10 + erasures);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<uint8_t> codeword = rs.encode(randomData(rng, 11));
        std::vector<uint8_t> corrupted = codeword;
        std::vector<size_t> positions = {0, 1, 2, 3, 4, 5, 6, 7,
                                         8, 9, 10, 11, 12, 13, 14};
        rng.shuffle(positions);
        std::vector<size_t> erased(
            positions.begin(), positions.begin() + erasures);
        for (size_t pos : erased)
            corrupted[pos] = static_cast<uint8_t>(rng.nextBelow(16));
        for (int e = 0; e < errors; ++e) {
            size_t pos = positions[erasures + e];
            corrupted[pos] ^=
                static_cast<uint8_t>(1 + rng.nextBelow(15));
        }
        RsDecodeResult result = rs.decode(corrupted, erased);
        ASSERT_TRUE(result.ok())
            << "errors=" << errors << " erasures=" << erasures
            << " trial=" << trial;
        EXPECT_EQ(*result.codeword, codeword);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RsCapabilityTest,
    ::testing::Values(std::pair{0, 0}, std::pair{0, 1}, std::pair{0, 2},
                      std::pair{0, 3}, std::pair{0, 4}, std::pair{1, 0},
                      std::pair{1, 1}, std::pair{1, 2}, std::pair{2, 0}));

} // namespace
} // namespace dnastore::ecc
