/**
 * @file
 * Unit tests for GC-content, homopolymer and Tm analysis.
 */

#include <gtest/gtest.h>

#include "dna/analysis.h"
#include "support/fixtures.h"

namespace dnastore::dna {
namespace {

TEST(GcContentTest, Basics)
{
    EXPECT_DOUBLE_EQ(gcContent(Sequence("GGCC")), 1.0);
    EXPECT_DOUBLE_EQ(gcContent(Sequence("AATT")), 0.0);
    EXPECT_DOUBLE_EQ(gcContent(Sequence("ACGT")), 0.5);
    EXPECT_DOUBLE_EQ(gcContent(Sequence()), 0.0);
}

TEST(GcContentTest, Count)
{
    EXPECT_EQ(gcCount(Sequence("GATTACA")), 2u);
    EXPECT_EQ(gcCount(Sequence()), 0u);
}

TEST(HomopolymerTest, Runs)
{
    EXPECT_EQ(maxHomopolymerRun(Sequence()), 0u);
    EXPECT_EQ(maxHomopolymerRun(Sequence("ACGT")), 1u);
    EXPECT_EQ(maxHomopolymerRun(Sequence("AACGT")), 2u);
    EXPECT_EQ(maxHomopolymerRun(Sequence("ACGGGGT")), 4u);
    EXPECT_EQ(maxHomopolymerRun(Sequence("TTTTT")), 5u);
    EXPECT_EQ(maxHomopolymerRun(Sequence("ATTTA")), 3u);
}

TEST(PrefixGcDeviationTest, AlternatingIsHalf)
{
    // Perfect strong/weak alternation: every prefix within 0.5.
    EXPECT_LE(maxPrefixGcDeviation(Sequence("ACAGTCTG")), 0.5);
}

TEST(PrefixGcDeviationTest, SkewedPrefixDetected)
{
    // GC-balanced overall, but the first 4 bases are all strong.
    Sequence seq("GGCCAATT");
    EXPECT_DOUBLE_EQ(maxPrefixGcDeviation(seq), 2.0);
}

TEST(PrefixGcDeviationTest, MinPrefixSkipsShortPrefixes)
{
    Sequence seq("GAAAAAAA");
    // From length 8 only: 1 strong vs 4 expected -> deviation 3.
    EXPECT_DOUBLE_EQ(maxPrefixGcDeviation(seq, 8), 3.0);
}

TEST(MeltingTemperatureTest, WallaceShortRule)
{
    // 2(A+T) + 4(G+C): ACGT -> 2*2 + 4*2 = 12.
    EXPECT_DOUBLE_EQ(meltingTemperature(Sequence("ACGT")), 12.0);
}

TEST(MeltingTemperatureTest, LongFormula)
{
    // 20-mer with 50% GC: 64.9 + 41 * (10 - 16.4) / 20 = 51.78.
    const Sequence &primer = test::fwdPrimer();
    EXPECT_NEAR(meltingTemperature(primer), 51.78, 0.01);
}

TEST(MeltingTemperatureTest, GcRaisesTm)
{
    Sequence low("ATATATATATATATATATAT");
    Sequence high("GCGCGCGCGCGCGCGCGCGC");
    EXPECT_LT(meltingTemperature(low), meltingTemperature(high));
}

} // namespace
} // namespace dnastore::dna
