/**
 * @file
 * Tests for the subtree-aligned buddy allocator (Section 3.1's file
 * alignment, implemented as the paper's future-work extension).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/extent_allocator.h"
#include "index/prefix_tree.h"

namespace dnastore::core {
namespace {

TEST(ExtentAllocatorTest, WholeSpaceInitiallyFree)
{
    ExtentAllocator alloc(5);
    EXPECT_EQ(alloc.capacity(), 1024u);
    EXPECT_EQ(alloc.largestFreeExtent(), 1024u);
    EXPECT_EQ(alloc.blocksReserved(), 0u);
}

TEST(ExtentAllocatorTest, ExtentsAreAligned)
{
    ExtentAllocator alloc(5);
    auto extents = alloc.allocate(77,
                                  ExtentAllocator::Policy::kMultiExtent);
    ASSERT_TRUE(extents.has_value());
    uint64_t covered = 0;
    for (const Extent &extent : *extents) {
        EXPECT_EQ(extent.start % extent.size, 0u)
            << "extent at " << extent.start;
        covered += extent.size;
    }
    EXPECT_EQ(covered, 77u);
}

TEST(ExtentAllocatorTest, MultiExtentUsesBase4Decomposition)
{
    // 77 = 1*64 + 3*4 + 1: five extents.
    ExtentAllocator alloc(5);
    auto extents = alloc.allocate(77,
                                  ExtentAllocator::Policy::kMultiExtent);
    ASSERT_TRUE(extents.has_value());
    EXPECT_EQ(extents->size(), 5u);
}

TEST(ExtentAllocatorTest, SingleSubtreeRoundsUp)
{
    ExtentAllocator alloc(5);
    auto extents = alloc.allocate(
        77, ExtentAllocator::Policy::kSingleSubtree);
    ASSERT_TRUE(extents.has_value());
    ASSERT_EQ(extents->size(), 1u);
    EXPECT_EQ((*extents)[0].size, 256u);  // next power of four
    EXPECT_EQ(alloc.blocksReserved(), 256u);
    EXPECT_EQ(alloc.blocksAllocated(), 77u);
}

TEST(ExtentAllocatorTest, AllocationsDoNotOverlap)
{
    ExtentAllocator alloc(5);
    std::vector<bool> used(1024, false);
    for (uint64_t size : {40u, 100u, 7u, 300u, 1u, 64u}) {
        auto extents = alloc.allocate(
            size, ExtentAllocator::Policy::kMultiExtent);
        ASSERT_TRUE(extents.has_value()) << "size " << size;
        for (const Extent &extent : *extents) {
            for (uint64_t b = extent.start; b < extent.end(); ++b) {
                EXPECT_FALSE(used[b]) << "block " << b;
                used[b] = true;
            }
        }
    }
}

TEST(ExtentAllocatorTest, ExhaustionReturnsNullopt)
{
    ExtentAllocator alloc(3);  // 64 blocks
    auto first =
        alloc.allocate(60, ExtentAllocator::Policy::kMultiExtent);
    ASSERT_TRUE(first.has_value());
    auto second =
        alloc.allocate(5, ExtentAllocator::Policy::kMultiExtent);
    EXPECT_FALSE(second.has_value());
    // Failed allocation must not leak partial reservations.
    auto third =
        alloc.allocate(4, ExtentAllocator::Policy::kMultiExtent);
    EXPECT_TRUE(third.has_value());
}

TEST(ExtentAllocatorTest, FreeCoalescesBuddies)
{
    ExtentAllocator alloc(4);  // 256 blocks
    auto extents = alloc.allocate(
        256, ExtentAllocator::Policy::kMultiExtent);
    ASSERT_TRUE(extents.has_value());
    EXPECT_EQ(alloc.largestFreeExtent(), 0u);
    for (const Extent &extent : *extents)
        alloc.free(extent);
    EXPECT_EQ(alloc.largestFreeExtent(), 256u);
}

TEST(ExtentAllocatorTest, FreeRejectsMisaligned)
{
    ExtentAllocator alloc(4);
    EXPECT_THROW(alloc.free(Extent{3, 4}), dnastore::FatalError);
    EXPECT_THROW(alloc.free(Extent{0, 3}), dnastore::FatalError);
}

TEST(ExtentAllocatorTest, SubtreeExtentNeedsOnePrimer)
{
    // The property the feature exists for: a subtree-aligned extent
    // is one prefix, i.e. one elongated primer retrieves the file.
    ExtentAllocator alloc(5);
    auto extents = alloc.allocate(
        64, ExtentAllocator::Policy::kSingleSubtree);
    ASSERT_TRUE(extents.has_value());
    const Extent &extent = (*extents)[0];
    auto cover = index::coverRange(extent.start, extent.end() - 1, 5);
    EXPECT_EQ(cover.size(), 1u);
}

} // namespace
} // namespace dnastore::core
