/**
 * @file
 * Tests for the deterministic text generator.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "corpus/text.h"

namespace dnastore::corpus {
namespace {

TEST(CorpusTest, ExactSize)
{
    EXPECT_EQ(generateText(0, 1).size(), 0u);
    EXPECT_EQ(generateText(100, 1).size(), 100u);
    EXPECT_EQ(generateText(150 * 1024, 1).size(),
              static_cast<size_t>(150 * 1024));
}

TEST(CorpusTest, Deterministic)
{
    EXPECT_EQ(generateText(5000, 7), generateText(5000, 7));
    EXPECT_NE(generateText(5000, 7), generateText(5000, 8));
}

TEST(CorpusTest, LooksLikeText)
{
    std::string text = generateText(10000, 3);
    size_t letters = 0, spaces = 0, periods = 0, newlines = 0;
    for (char c : text) {
        if (std::isalpha(static_cast<unsigned char>(c)))
            ++letters;
        else if (c == ' ')
            ++spaces;
        else if (c == '.')
            ++periods;
        else if (c == '\n')
            ++newlines;
    }
    EXPECT_GT(letters, 7000u);
    EXPECT_GT(spaces, 800u);
    EXPECT_GT(periods, 50u);
    EXPECT_GT(newlines, 10u);  // paragraph structure exists
}

TEST(CorpusTest, BytesMatchText)
{
    std::string text = generateText(512, 9);
    std::vector<uint8_t> bytes = generateBytes(512, 9);
    ASSERT_EQ(bytes.size(), text.size());
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), text.begin()));
}

} // namespace
} // namespace dnastore::corpus
