/**
 * @file
 * Tests for the baseline object store (prior work [23]).
 */

#include <gtest/gtest.h>

#include "baseline/object_store.h"
#include "support/fixtures.h"

namespace dnastore::baseline {
namespace {

const dna::Sequence &kFwd = test::fwdPrimer();
const dna::Sequence &kRev = test::revPrimer();
const dna::Sequence kFwd2("GGATCCGGATCCGGATCCGG");
const dna::Sequence kRev2("CAGTCAGTCAGTCAGTCAGT");

TEST(ObjectStoreTest, WriteReadRoundTrip)
{
    ObjectStoreParams params;
    ObjectStore store(params, kFwd, kRev);
    Bytes data = test::corpusBlocks(12, 9);
    store.writeObject(data);
    EXPECT_EQ(store.unitCount(), 12u);
    EXPECT_EQ(store.liveMolecules(), 12u * 15u);

    auto recovered = store.readObject();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, data);
}

TEST(ObjectStoreTest, ReadCostIsProportionalToObject)
{
    // The baseline's core weakness: reading anything reads everything.
    ObjectStoreParams params;
    ObjectStore store(params, kFwd, kRev);
    store.writeObject(test::corpusBlocks(12, 10));
    store.readObject();
    EXPECT_GE(store.costs().readsSequenced(),
              static_cast<size_t>(12 * 15 * params.coverage));
}

TEST(ObjectStoreTest, NaiveUpdateResynthesizesEverything)
{
    ObjectStoreParams params;
    ObjectStore store(params, kFwd, kRev);
    Bytes data = test::corpusBlocks(12, 11);
    store.writeObject(data);
    size_t before = store.costs().moleculesSynthesized();

    core::UpdateOp op;
    op.delete_pos = 0;
    op.delete_len = 1;
    op.insert_pos = 0;
    op.insert_bytes = {'Z'};
    store.naiveUpdate(3, op, kFwd2, kRev2);

    // Full re-synthesis: 12 units x 15 molecules again.
    EXPECT_EQ(store.costs().moleculesSynthesized(), before + 12 * 15);
    EXPECT_EQ(store.primerPairsUsed(), 2u);

    auto recovered = store.readObject();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ((*recovered)[3 * 256], 'Z');
    EXPECT_EQ((*recovered)[0], data[0]);
}

TEST(ObjectStoreTest, OldDataRemainsInTube)
{
    ObjectStoreParams params;
    ObjectStore store(params, kFwd, kRev);
    store.writeObject(test::corpusBlocks(4, 12));
    size_t species_before = store.pool().speciesCount();

    core::UpdateOp op;
    op.insert_bytes = {'!'};
    store.naiveUpdate(0, op, kFwd2, kRev2);
    // Old + new copies coexist, halving effective density.
    EXPECT_GT(store.pool().speciesCount(), species_before);
}

TEST(ObjectStoreTest, RejectsOversizedObject)
{
    ObjectStoreParams params;
    params.index_length = 2;  // only 16 units
    ObjectStore store(params, kFwd, kRev);
    EXPECT_THROW(store.writeObject(Bytes(17 * 256)),
                 dnastore::FatalError);
}

} // namespace
} // namespace dnastore::baseline
