/**
 * @file
 * Streaming incremental decode contract tests.
 *
 * Pinned contracts:
 *  - deferred mode (no expected units): feed() + finish() over
 *    chunked reads is byte-identical — units AND DecodeStats — to a
 *    one-shot Decoder::decodeAll of the concatenated read set, for
 *    session pools of 1, 2, and 8 threads;
 *  - eager mode: with every (block, 0) expected, the coverage-22
 *    session terminates before consuming the full read budget,
 *    further chunks are skipped (counted, never processed), every
 *    emitted payload is byte-identical to the one-shot decode of
 *    the same unit, and the emission order is identical for every
 *    thread count;
 *  - fault injection: a block whose molecules never reach the pool
 *    resolves its unit future as Incomplete and the stream's finish
 *    outcome as Partial, while sibling units still decode;
 *  - DecodeService streams: chunks flow through admission control,
 *    per-unit futures resolve the moment a unit decodes, and the
 *    stream telemetry (reads consumed/skipped, early units,
 *    reads-at-completion histogram) adds up exactly.
 */

#include <algorithm>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/thread_pool.h"
#include "core/decode_service.h"
#include "sim/pcr.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

constexpr size_t kBlocks = 5;
constexpr size_t kCoverage = 22;
constexpr size_t kChunkReads = 100;

/** One partition's full channel leg plus its one-shot golden. */
struct Leg
{
    std::unique_ptr<Partition> partition;
    std::unique_ptr<Decoder> decoder;
    std::vector<sim::Read> reads;
    std::map<uint64_t, BlockVersions> golden_units;
    DecodeStats golden_stats;
};

/**
 * Encode → synthesize → PCR → sequence one 5-block partition at
 * coverage 22, optionally dropping every molecule of @p drop_block
 * before synthesis (an unrecoverable unit for the fault tests), and
 * compute the sequential one-shot golden.
 */
Leg
buildLeg(std::optional<uint64_t> drop_block = std::nullopt)
{
    Leg leg;
    const test::PrimerPair &primers = test::primerPair(0);
    leg.partition = std::make_unique<Partition>(
        test::partitionConfig(0), primers.forward, primers.reverse, 13);
    Bytes data = test::corpusBlocks(kBlocks, test::kTestSeed);

    std::vector<sim::DesignedMolecule> molecules =
        leg.partition->encodeFile(data);
    if (drop_block) {
        molecules.erase(
            std::remove_if(molecules.begin(), molecules.end(),
                           [&](const sim::DesignedMolecule &m) {
                               return m.info.block == *drop_block;
                           }),
            molecules.end());
    }
    sim::SynthesisParams synthesis;
    synthesis.seed = 1000;
    sim::Pool pool = sim::synthesize(molecules, synthesis);

    sim::PcrParams pcr;
    pcr.cycles = 15;
    sim::Pool product =
        sim::runPcr(pool, {sim::PcrPrimer{primers.forward, 1.0}},
                    primers.reverse, pcr);

    sim::SequencerParams sequencer;
    sequencer.sub_rate = 0.01;
    sequencer.ins_rate = 0.002;
    sequencer.del_rate = 0.002;
    sequencer.seed = 97;
    leg.reads = sim::sequencePool(
        product, kBlocks * leg.partition->config().rs_n * kCoverage,
        sequencer);

    DecoderParams params;
    params.threads = 1;
    leg.decoder = std::make_unique<Decoder>(*leg.partition, params);
    leg.golden_units =
        leg.decoder->decodeAll(leg.reads, &leg.golden_stats);
    return leg;
}

/** The leg's reads split into fixed-size chunks (last one ragged). */
std::vector<std::vector<sim::Read>>
chunked(const std::vector<sim::Read> &reads)
{
    std::vector<std::vector<sim::Read>> chunks;
    for (size_t i = 0; i < reads.size(); i += kChunkReads) {
        size_t end = std::min(reads.size(), i + kChunkReads);
        chunks.emplace_back(reads.begin() + i, reads.begin() + end);
    }
    return chunks;
}

std::vector<UnitKey>
allBlocksVersionZero()
{
    std::vector<UnitKey> units;
    for (uint64_t block = 0; block < kBlocks; ++block)
        units.push_back({block, 0u});
    return units;
}

TEST(StreamingDecodeTest, DeferredModeMatchesOneShotExactly)
{
    Leg leg = buildLeg();
    ASSERT_EQ(leg.golden_stats.units_decoded, kBlocks);

    for (size_t threads : {1u, 2u, 8u}) {
        DecoderParams params;
        params.threads = threads;
        StreamingDecoder session(*leg.partition, params);
        for (const auto &chunk : chunked(leg.reads))
            EXPECT_EQ(session.feed(chunk), chunk.size());
        EXPECT_FALSE(session.complete());  // deferred: never early

        DecodeStats stats;
        auto units = session.finish(&stats);
        EXPECT_EQ(units, leg.golden_units) << "threads=" << threads;
        EXPECT_EQ(stats, leg.golden_stats) << "threads=" << threads;
        EXPECT_TRUE(session.finished());
    }
}

TEST(StreamingDecodeTest, EagerModeTerminatesEarlyDeterministically)
{
    Leg leg = buildLeg();
    const auto chunks = chunked(leg.reads);

    std::optional<size_t> consumed_at_one_thread;
    std::optional<std::vector<StreamedUnit>> emitted_at_one_thread;
    for (size_t threads : {1u, 2u, 8u}) {
        DecoderParams params;
        params.threads = threads;
        StreamingParams streaming;
        streaming.expected_units = allBlocksVersionZero();
        std::vector<UnitKey> callback_order;
        streaming.on_unit = [&](uint64_t block, unsigned version,
                                const Bytes &payload) {
            callback_order.push_back({block, version});
            // Every payload — early or not — must match the one-shot
            // decode of the same unit byte for byte.
            EXPECT_EQ(payload,
                      leg.golden_units.at(block).versions.at(version));
        };
        StreamingDecoder session(*leg.partition, params, streaming);
        for (const auto &chunk : chunks) {
            size_t consumed = session.feed(chunk);
            if (session.complete()) {
                EXPECT_TRUE(consumed == chunk.size() || consumed == 0);
                break;
            }
            EXPECT_EQ(consumed, chunk.size());
        }
        ASSERT_TRUE(session.complete())
            << "coverage 22 must recover all blocks before the "
               "budget runs out";

        // A chunk fed after completion is skipped, not processed.
        EXPECT_EQ(session.feed(chunks.front()), 0u);

        DecodeStats stats;
        auto units = session.finish(&stats);
        EXPECT_EQ(stats.units_emitted_early, kBlocks);
        EXPECT_LT(stats.reads_consumed, leg.reads.size())
            << "early termination must leave reads unconsumed";
        EXPECT_EQ(stats.reads_in,
                  stats.reads_consumed + stats.reads_skipped);
        for (uint64_t block = 0; block < kBlocks; ++block) {
            EXPECT_EQ(units.at(block).versions.at(0),
                      leg.golden_units.at(block).versions.at(0));
        }
        EXPECT_EQ(callback_order.size(), kBlocks);

        // Determinism across thread counts: the reads consumed at
        // completion and the exact emission sequence are invariant.
        if (!consumed_at_one_thread) {
            consumed_at_one_thread = stats.reads_consumed;
            emitted_at_one_thread = session.emitted();
        } else {
            EXPECT_EQ(stats.reads_consumed, *consumed_at_one_thread)
                << "threads=" << threads;
            EXPECT_EQ(session.emitted(), *emitted_at_one_thread)
                << "threads=" << threads;
        }
    }
}

TEST(StreamingDecodeTest, FeedAndFinishAfterFinishThrow)
{
    Leg leg = buildLeg();
    DecoderParams params;
    params.threads = 1;
    StreamingDecoder session(*leg.partition, params);
    session.feed(leg.reads);
    session.finish();
    EXPECT_THROW(session.feed(leg.reads), FatalError);
    EXPECT_THROW(session.finish(), FatalError);
}

TEST(StreamingDecodeTest, ServiceStreamDeliversUnitsAndTelemetry)
{
    Leg leg = buildLeg();
    const auto chunks = chunked(leg.reads);

    telemetry::MetricsRegistry registry;
    DecodeServiceParams service_params;
    service_params.threads = 4;
    service_params.metrics = &registry;
    DecodeService service(service_params);

    StreamParams params;
    params.decoder = leg.decoder.get();
    params.expected_units = allBlocksVersionZero();
    DecodeStream stream = service.openStream(params);

    std::vector<std::future<StreamUnitResult>> unit_futures;
    for (uint64_t block = 0; block < kBlocks; ++block)
        unit_futures.push_back(stream.unitFuture(block, 0));
    // Each expected unit's future can be claimed exactly once, and
    // only expected units have one.
    EXPECT_THROW(stream.unitFuture(0, 0), FatalError);
    EXPECT_THROW(stream.unitFuture(99, 0), FatalError);

    // Feed until the session reports completion, then once more to
    // pin the Skipped contract.
    size_t chunks_fed = 0;
    for (const auto &chunk : chunks) {
        DecodeOutcome outcome = stream.feed(chunk).get();
        ++chunks_fed;
        ASSERT_TRUE(outcome.status == DecodeStatus::Ok ||
                    outcome.status == DecodeStatus::Skipped);
        if (stream.complete())
            break;
    }
    ASSERT_TRUE(stream.complete());
    ASSERT_LT(chunks_fed, chunks.size());
    EXPECT_EQ(stream.feed(chunks.back()).get().status,
              DecodeStatus::Skipped);

    for (uint64_t block = 0; block < kBlocks; ++block) {
        StreamUnitResult unit = unit_futures[block].get();
        EXPECT_EQ(unit.status, UnitStatus::Decoded);
        EXPECT_EQ(unit.block, block);
        EXPECT_EQ(unit.payload,
                  leg.golden_units.at(block).versions.at(0));
    }

    DecodeOutcome final = stream.finish().get();
    EXPECT_EQ(final.status, DecodeStatus::Ok);
    for (uint64_t block = 0; block < kBlocks; ++block) {
        EXPECT_EQ(final.units.at(block).versions.at(0),
                  leg.golden_units.at(block).versions.at(0));
    }
    EXPECT_THROW(stream.feed({}), FatalError);
    EXPECT_THROW(stream.finish(), FatalError);

    telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("decode_service.streams_opened"), 1u);
    // chunks_fed + one skipped chunk + the finish marker.
    EXPECT_EQ(snap.counters.at("decode_service.stream_chunks"),
              chunks_fed + 2);
    EXPECT_EQ(
        snap.counters.at("decode_service.stream_units_early"), kBlocks);
    EXPECT_EQ(
        snap.counters.at("decode_service.streams_completed_early"), 1u);
    EXPECT_EQ(final.stats.reads_consumed,
              snap.counters.at("decode_service.stream_reads_consumed"));
    EXPECT_EQ(final.stats.reads_skipped,
              snap.counters.at("decode_service.stream_reads_skipped"));
    EXPECT_EQ(final.stats.reads_in,
              final.stats.reads_consumed + final.stats.reads_skipped);
    const telemetry::HistogramSnapshot &at_completion =
        snap.histograms.at("decode_service.stream_reads_at_completion");
    EXPECT_EQ(at_completion.count, 1u);
    EXPECT_EQ(at_completion.sum, final.stats.reads_consumed);
}

TEST(StreamingDecodeTest, UnrecoverableUnitResolvesIncompleteAndPartial)
{
    constexpr uint64_t kDroppedBlock = 3;
    Leg leg = buildLeg(kDroppedBlock);
    // The golden confirms the channel itself cannot recover the
    // dropped block: its molecules never reached the pool.
    ASSERT_EQ(leg.golden_units.count(kDroppedBlock), 0u);

    DecodeServiceParams service_params;
    service_params.threads = 2;
    DecodeService service(service_params);

    StreamParams params;
    params.decoder = leg.decoder.get();
    params.expected_units = allBlocksVersionZero();
    DecodeStream stream = service.openStream(params);

    std::future<StreamUnitResult> dropped =
        stream.unitFuture(kDroppedBlock, 0);
    for (const auto &chunk : chunked(leg.reads))
        ASSERT_EQ(stream.feed(chunk).get().status, DecodeStatus::Ok);
    EXPECT_FALSE(stream.complete());

    DecodeOutcome final = stream.finish().get();
    EXPECT_EQ(final.status, DecodeStatus::Partial);
    EXPECT_EQ(final.units.count(kDroppedBlock), 0u);

    StreamUnitResult missing = dropped.get();
    EXPECT_EQ(missing.status, UnitStatus::Incomplete);
    EXPECT_EQ(missing.block, kDroppedBlock);
    EXPECT_TRUE(missing.payload.empty());

    // Sibling units still decode, byte-identical to the golden.
    for (uint64_t block = 0; block < kBlocks; ++block) {
        if (block == kDroppedBlock)
            continue;
        StreamUnitResult unit = stream.unitFuture(block, 0).get();
        EXPECT_EQ(unit.status, UnitStatus::Decoded);
        EXPECT_EQ(unit.payload,
                  leg.golden_units.at(block).versions.at(0));
    }
}

TEST(StreamingDecodeTest, ServiceDeferredStreamMatchesOneShot)
{
    Leg leg = buildLeg();
    telemetry::MetricsRegistry registry;
    DecodeServiceParams service_params;
    service_params.threads = 4;
    service_params.metrics = &registry;
    DecodeService service(service_params);

    StreamParams params;
    params.decoder = leg.decoder.get();
    DecodeStream stream = service.openStream(params);
    for (const auto &chunk : chunked(leg.reads))
        EXPECT_EQ(stream.feed(chunk).get().status, DecodeStatus::Ok);

    DecodeOutcome final = stream.finish().get();
    EXPECT_EQ(final.status, DecodeStatus::Ok);
    EXPECT_EQ(final.units, leg.golden_units);
    EXPECT_EQ(final.stats, leg.golden_stats);
    // Deferred mode never completes early.
    EXPECT_EQ(registry.snapshot().counters.at(
                  "decode_service.streams_completed_early"),
              0u);
}

} // namespace
} // namespace dnastore::core
