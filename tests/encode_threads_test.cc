/**
 * @file
 * Encode-path thread-invariance tests: Partition::encodeFile and
 * BlockDevice::writeFile must produce byte-identical molecule streams
 * (and therefore identical pools) for any EncodeParams::threads
 * value, whether the blocks fan out over a local pool or a shared
 * caller-owned one. This is the encode-side twin of
 * decode_threads_test.cc's contract.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/block_device.h"
#include "sim/synthesis.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

/** Molecule streams equal in order, sequence, and provenance. */
testing::AssertionResult
moleculesEqual(const std::vector<sim::DesignedMolecule> &got,
               const std::vector<sim::DesignedMolecule> &want)
{
    if (got.size() != want.size()) {
        return testing::AssertionFailure()
               << "molecule count " << got.size() << " != "
               << want.size();
    }
    for (size_t i = 0; i < got.size(); ++i) {
        if (!(got[i].seq == want[i].seq) ||
            !(got[i].info == want[i].info)) {
            return testing::AssertionFailure()
                   << "molecule " << i << " differs (block "
                   << got[i].info.block << " vs " << want[i].info.block
                   << ", column " << int(got[i].info.column) << " vs "
                   << int(want[i].info.column) << ")";
        }
    }
    return testing::AssertionSuccess();
}

class EncodeThreadsTest : public ::testing::Test
{
  protected:
    PartitionConfig config_;
    std::unique_ptr<Partition> partition_;
    Bytes data_;

    void
    SetUp() override
    {
        partition_ = std::make_unique<Partition>(
            config_, test::fwdPrimer(), test::revPrimer(), 13);
        data_ = test::corpusBlocks(20, 77);
    }
};

TEST_F(EncodeThreadsTest, EncodeFileByteIdenticalAcrossThreadCounts)
{
    EncodeParams sequential;
    sequential.threads = 1;
    std::vector<sim::DesignedMolecule> baseline =
        partition_->encodeFile(data_, sequential);
    ASSERT_EQ(baseline.size(), 20u * config_.rs_n);

    for (size_t threads : {2u, 8u, 0u}) {
        EncodeParams params;
        params.threads = threads;
        EXPECT_TRUE(moleculesEqual(
            partition_->encodeFile(data_, params), baseline))
            << "threads=" << threads;
    }
}

TEST_F(EncodeThreadsTest, EncodeFileOverSharedPoolMatches)
{
    EncodeParams sequential;
    sequential.threads = 1;
    std::vector<sim::DesignedMolecule> baseline =
        partition_->encodeFile(data_, sequential);

    // A caller-owned pool (the DecodeService/bench sharing pattern),
    // reused across several encodes.
    ThreadPool pool(3);
    for (int round = 0; round < 3; ++round) {
        EXPECT_TRUE(moleculesEqual(
            partition_->encodeFile(data_, {}, &pool), baseline))
            << "round " << round;
    }
}

TEST_F(EncodeThreadsTest, TailBlockPaddingIsThreadInvariant)
{
    // A non-multiple-of-block-size file exercises the zero-padded
    // tail block in the parallel path.
    Bytes ragged(data_.begin(),
                 data_.begin() + 7 * config_.block_data_bytes + 100);
    EncodeParams sequential;
    sequential.threads = 1;
    EncodeParams parallel;
    parallel.threads = 8;
    EXPECT_TRUE(
        moleculesEqual(partition_->encodeFile(ragged, parallel),
                       partition_->encodeFile(ragged, sequential)));
}

TEST_F(EncodeThreadsTest, WriteFilePoolIdenticalAcrossEncodeThreads)
{
    BlockDeviceParams sequential_params;
    sequential_params.encode.threads = 1;
    BlockDeviceParams parallel_params;
    parallel_params.encode.threads = 8;

    auto sequential =
        test::makeLoadedDevice(sequential_params, data_);
    auto parallel = test::makeLoadedDevice(parallel_params, data_);

    const auto &sequential_species = sequential->pool().species();
    const auto &parallel_species = parallel->pool().species();
    ASSERT_EQ(parallel_species.size(), sequential_species.size());
    for (size_t i = 0; i < sequential_species.size(); ++i) {
        EXPECT_EQ(parallel_species[i].seq, sequential_species[i].seq)
            << "species " << i;
        EXPECT_EQ(parallel_species[i].info, sequential_species[i].info)
            << "species " << i;
        // Masses come from one sequential RNG stream over an
        // identical molecule order, so they match bit for bit.
        EXPECT_EQ(parallel_species[i].mass, sequential_species[i].mass)
            << "species " << i;
    }
}

TEST_F(EncodeThreadsTest, ParallelEncodedDeviceRoundTrips)
{
    BlockDeviceParams params;
    params.encode.threads = 0;  // hardware concurrency
    auto device = test::makeLoadedDevice(params, data_);
    EXPECT_TRUE(
        test::blockMatches(device->readBlock(3), data_, 3));
}

} // namespace
} // namespace dnastore::core
