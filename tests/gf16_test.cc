/**
 * @file
 * Unit tests for GF(16) arithmetic.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "ecc/gf16.h"

namespace dnastore::ecc {
namespace {

TEST(GF16Test, AdditionIsXor)
{
    EXPECT_EQ(GF16::add(0x5, 0x3), 0x6);
    EXPECT_EQ(GF16::add(0xf, 0xf), 0x0);
    EXPECT_EQ(GF16::sub(0x5, 0x3), GF16::add(0x5, 0x3));
}

TEST(GF16Test, MultiplicationByZeroAndOne)
{
    for (unsigned a = 0; a < 16; ++a) {
        EXPECT_EQ(GF16::mul(static_cast<uint8_t>(a), 0), 0);
        EXPECT_EQ(GF16::mul(static_cast<uint8_t>(a), 1), a);
    }
}

TEST(GF16Test, KnownProducts)
{
    // alpha = 2 with x^4 + x + 1: 2*8 = 3 (alpha^4 = alpha + 1).
    EXPECT_EQ(GF16::mul(2, 8), 3);
    EXPECT_EQ(GF16::mul(3, 3), 5);
}

TEST(GF16Test, MultiplicationCommutesAndAssociates)
{
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            EXPECT_EQ(GF16::mul(a, b), GF16::mul(b, a));
            for (unsigned c = 0; c < 16; ++c) {
                EXPECT_EQ(GF16::mul(GF16::mul(a, b), c),
                          GF16::mul(a, GF16::mul(b, c)));
            }
        }
    }
}

TEST(GF16Test, Distributivity)
{
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            for (unsigned c = 0; c < 16; ++c) {
                EXPECT_EQ(GF16::mul(a, GF16::add(b, c)),
                          GF16::add(GF16::mul(a, b), GF16::mul(a, c)));
            }
        }
    }
}

TEST(GF16Test, InverseProperty)
{
    for (unsigned a = 1; a < 16; ++a) {
        uint8_t inverse = GF16::inv(static_cast<uint8_t>(a));
        EXPECT_EQ(GF16::mul(static_cast<uint8_t>(a), inverse), 1);
    }
    EXPECT_THROW(GF16::inv(0), dnastore::PanicError);
}

TEST(GF16Test, DivisionMatchesInverse)
{
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 1; b < 16; ++b) {
            EXPECT_EQ(GF16::div(a, b), GF16::mul(a, GF16::inv(b)));
        }
    }
    EXPECT_THROW(GF16::div(5, 0), dnastore::PanicError);
}

TEST(GF16Test, AlphaPowersCycle)
{
    EXPECT_EQ(GF16::alphaPow(0), 1);
    EXPECT_EQ(GF16::alphaPow(1), 2);
    EXPECT_EQ(GF16::alphaPow(15), 1);  // order-15 group
    EXPECT_EQ(GF16::alphaPow(-1), GF16::inv(2));
}

TEST(GF16Test, LogIsInverseOfAlphaPow)
{
    for (unsigned a = 1; a < 16; ++a) {
        EXPECT_EQ(
            GF16::alphaPow(static_cast<int>(GF16::log(
                static_cast<uint8_t>(a)))),
            a);
    }
}

TEST(GF16Test, PowMatchesRepeatedMultiplication)
{
    for (unsigned a = 1; a < 16; ++a) {
        uint8_t acc = 1;
        for (int n = 0; n < 16; ++n) {
            EXPECT_EQ(GF16::pow(static_cast<uint8_t>(a), n), acc);
            acc = GF16::mul(acc, static_cast<uint8_t>(a));
        }
    }
}

TEST(GF16Test, MulDivRoundTripAllPairs)
{
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 1; b < 16; ++b) {
            EXPECT_EQ(GF16::div(GF16::mul(static_cast<uint8_t>(a),
                                          static_cast<uint8_t>(b)),
                                static_cast<uint8_t>(b)),
                      a);
            EXPECT_EQ(GF16::mul(GF16::div(static_cast<uint8_t>(a),
                                          static_cast<uint8_t>(b)),
                                static_cast<uint8_t>(b)),
                      a);
        }
    }
}

TEST(GF16Test, PowRoundTripsThroughNegativeExponents)
{
    for (unsigned a = 1; a < 16; ++a) {
        for (int n = -20; n <= 20; ++n) {
            EXPECT_EQ(GF16::mul(GF16::pow(static_cast<uint8_t>(a), n),
                                GF16::pow(static_cast<uint8_t>(a), -n)),
                      1)
                << "a=" << a << " n=" << n;
        }
    }
}

TEST(GF16Test, ZeroLogSentinelIsNotAValidExponent)
{
    // log[0] holds kZeroLogSentinel so an accidental read cannot
    // alias a real discrete log; the accessor itself must panic.
    EXPECT_GE(GF16::kZeroLogSentinel, GF16::kMultGroupOrder);
    EXPECT_THROW(GF16::log(0), dnastore::PanicError);
}

TEST(GF16Test, MulTableRowsMatchCheckedMul)
{
    for (unsigned c = 0; c < 16; ++c) {
        const uint8_t *row = GF16::mulTable(static_cast<uint8_t>(c));
        for (unsigned v = 0; v < 16; ++v) {
            EXPECT_EQ(row[v], GF16::mul(static_cast<uint8_t>(c),
                                        static_cast<uint8_t>(v)));
        }
    }
}

} // namespace
} // namespace dnastore::ecc
