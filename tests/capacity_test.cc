/**
 * @file
 * Tests for the Figure 3 capacity/density model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/capacity.h"

namespace dnastore::core {
namespace {

TEST(CapacityTest, MaximumCapacityAtFullIndex)
{
    // Paper Section 3: with the entire 110 usable bases used for
    // indexing, capacity is 2^220 addresses * 1 bit = 2^217 bytes.
    CapacityPoint point = capacityAt(150, 20, 110);
    EXPECT_DOUBLE_EQ(point.capacity_bytes_log2, 217.0);
    EXPECT_NEAR(point.bits_per_base, 1.0 / 150.0, 1e-9);
}

TEST(CapacityTest, MaximumDensityAtZeroIndex)
{
    // One molecule, no index: 2 bits/usable base.
    CapacityPoint point = capacityAt(150, 20, 0);
    EXPECT_NEAR(point.bits_per_base, 2.0 * 110.0 / 150.0, 1e-9);
    // Capacity: 220 bits = 27.5 bytes -> log2 ~ 4.78.
    EXPECT_NEAR(point.capacity_bytes_log2, std::log2(220.0) - 3.0,
                1e-9);
}

TEST(CapacityTest, Primer30CurvesAreLower)
{
    // Dashed lines of Figure 3: 30-base primers lose capacity and
    // density at every index length.
    for (size_t L : {0u, 10u, 40u, 80u}) {
        CapacityPoint p20 = capacityAt(150, 20, L);
        CapacityPoint p30 = capacityAt(150, 30, L);
        EXPECT_GT(p20.capacity_bytes_log2, p30.capacity_bytes_log2);
        EXPECT_GT(p20.bits_per_base, p30.bits_per_base);
    }
}

TEST(CapacityTest, CapacityIsMonotonicInL)
{
    auto curve = capacityCurve(150, 20);
    ASSERT_EQ(curve.size(), 111u);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].capacity_bytes_log2,
                  curve[i - 1].capacity_bytes_log2 - 1e-9);
        EXPECT_LE(curve[i].bits_per_base,
                  curve[i - 1].bits_per_base + 1e-9);
    }
}

TEST(CapacityTest, WorldDataThresholdCrossed)
{
    // Figure 3 annotates that partition capacity crosses the world's
    // total data (~1.75e23 bytes ~ 2^77) at a modest index length.
    auto curve = capacityCurve(150, 20);
    bool crossed = false;
    for (const CapacityPoint &point : curve)
        crossed |= point.capacity_bytes_log2 > 77.0;
    EXPECT_TRUE(crossed);
    // And the crossing happens well before half the index space.
    for (const CapacityPoint &point : curve) {
        if (point.capacity_bytes_log2 > 77.0) {
            EXPECT_LT(point.index_length, 40u);
            break;
        }
    }
}

TEST(CapacityTest, SparseIndexDensityLoss)
{
    // Section 4.3: 10-base sparse index instead of 5 dense bases
    // costs ~3% information density with 150-base strands.
    CapacityPoint dense = capacityAt(150, 20, 5);
    CapacityPoint sparse = capacityAt(150, 20, 10);
    double loss = 1.0 - sparse.bits_per_base / dense.bits_per_base;
    EXPECT_NEAR(loss, 0.048, 0.02);  // 5 extra bases / 105 usable
}

TEST(CapacityTest, InvalidConfigsThrow)
{
    EXPECT_THROW(capacityAt(30, 20, 0), dnastore::FatalError);
    EXPECT_THROW(capacityAt(150, 20, 111), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::core
