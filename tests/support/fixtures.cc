#include "support/fixtures.h"

#include <algorithm>

#include "common/error.h"
#include "corpus/text.h"

namespace dnastore::test {

const dna::Sequence &
fwdPrimer()
{
    static const dna::Sequence primer("ACGTACGTACGTACGTACGT");
    return primer;
}

const dna::Sequence &
revPrimer()
{
    static const dna::Sequence primer("TGCATGCATGCATGCATGCA");
    return primer;
}

const PrimerPair &
primerPair(size_t i)
{
    static const PrimerPair pairs[kPrimerPairCount] = {
        {fwdPrimer(), revPrimer()},
        {dna::Sequence("ACTGAGGTCTGCCTGAAGTC"),
         dna::Sequence("TGAACGCGGTATTGCAGACC")},
        {dna::Sequence("GATTACAGTCCAGGCATGCA"),
         dna::Sequence("CCATGGTTAACGTCAGTGGA")},
        {dna::Sequence("TTGCACCGTAGATCCGATAC"),
         dna::Sequence("GGTACTTCGAACGGACTTGA")},
    };
    panicIf(i >= kPrimerPairCount, "primerPair: index ", i,
            " out of range");
    return pairs[i];
}

core::PartitionConfig
partitionConfig(size_t i)
{
    core::PartitionConfig config;
    config.index_seed += 17 * static_cast<uint64_t>(i);
    config.scramble_seed += 29 * static_cast<uint64_t>(i);
    return config;
}

Rng
testRng(std::string_view label)
{
    return Rng::deriveStream(kTestSeed, label);
}

core::Bytes
corpusBlocks(size_t blocks, uint64_t seed)
{
    return corpus::generateBytes(blocks * kBlockBytes, seed);
}

core::Bytes
blockSlice(const core::Bytes &data, uint64_t block)
{
    panicIf((block + 1) * kBlockBytes > data.size(),
            "blockSlice: block ", block, " runs past ", data.size(),
            " data bytes");
    return core::Bytes(data.begin() + block * kBlockBytes,
                       data.begin() + (block + 1) * kBlockBytes);
}

std::unique_ptr<core::BlockDevice>
makeLoadedDevice(const core::BlockDeviceParams &params,
                 const core::Bytes &data, uint16_t file_id)
{
    auto device = std::make_unique<core::BlockDevice>(
        params, fwdPrimer(), revPrimer(), file_id);
    device->writeFile(data);
    return device;
}

testing::AssertionResult
blockMatches(const std::optional<core::Bytes> &content,
             const core::Bytes &data, uint64_t block)
{
    if (!content.has_value()) {
        return testing::AssertionFailure()
               << "block " << block << " failed to decode";
    }
    core::Bytes expected = blockSlice(data, block);
    if (content->size() != expected.size()) {
        return testing::AssertionFailure()
               << "block " << block << " decoded to " << content->size()
               << " bytes, want " << expected.size();
    }
    auto mismatch =
        std::mismatch(content->begin(), content->end(), expected.begin());
    if (mismatch.first != content->end()) {
        size_t at = static_cast<size_t>(mismatch.first - content->begin());
        return testing::AssertionFailure()
               << "block " << block << " diverges at byte " << at << " (got "
               << int(*mismatch.first) << ", want " << int(*mismatch.second)
               << ")";
    }
    return testing::AssertionSuccess();
}

RoundTrip
roundTrip(core::BlockDevice &device, const core::Bytes &data)
{
    RoundTrip result;
    auto contents = device.readAll();
    result.blocks = contents.size();
    const size_t data_blocks = data.size() / kBlockBytes;
    for (uint64_t block = 0; block < contents.size(); ++block) {
        if (!contents[block].has_value()) {
            if (result.first_mismatch.empty()) {
                result.first_mismatch =
                    "block " + std::to_string(block) + " failed to decode";
            }
            continue;
        }
        ++result.decoded;
        if (block >= data_blocks) {
            // The device holds more blocks than the reference data;
            // count them as decoded but never as exact.
            if (result.first_mismatch.empty()) {
                result.first_mismatch = "block " +
                                        std::to_string(block) +
                                        " is beyond the reference data";
            }
            continue;
        }
        testing::AssertionResult match =
            blockMatches(contents[block], data, block);
        if (match) {
            ++result.exact;
        } else if (result.first_mismatch.empty()) {
            result.first_mismatch = match.message();
        }
    }
    return result;
}

} // namespace dnastore::test
