/**
 * @file
 * Shared test fixtures: canonical primer pair, seeded RNG streams, a
 * small deterministic text corpus, and an encode→decode round-trip
 * harness. Used by the gtest suites (and reusable from bench drivers)
 * so every suite agrees on one set of well-formed inputs.
 */

#ifndef DNASTORE_TESTS_SUPPORT_FIXTURES_H
#define DNASTORE_TESTS_SUPPORT_FIXTURES_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/block_device.h"
#include "dna/sequence.h"

namespace dnastore::test {

/** Seed used by every fixture unless a test overrides it. */
inline constexpr uint64_t kTestSeed = 0xD1CE'5EEDULL;

/** Bytes per logical block (mirrors core::kBlockBytes usage in tests). */
inline constexpr size_t kBlockBytes = 256;

/** Canonical forward partition primer used across the suites. */
const dna::Sequence &fwdPrimer();

/** Canonical reverse partition primer used across the suites. */
const dna::Sequence &revPrimer();

/** A main-primer pair defining one partition. */
struct PrimerPair
{
    dna::Sequence forward;
    dna::Sequence reverse;
};

/** Number of entries in the fixed primer-pair table. */
inline constexpr size_t kPrimerPairCount = 4;

/** The i-th of a small table of mutually well-separated 20-base
 *  primer pairs for multi-partition tests. Pair 0 is
 *  {fwdPrimer(), revPrimer()}. Panics if i >= kPrimerPairCount. */
const PrimerPair &primerPair(size_t i);

/** A per-partition config: the default geometry with index and
 *  scrambler seeds varied per partition (Section 4.4). */
core::PartitionConfig partitionConfig(size_t i);

/** Deterministic RNG for a named sub-stream of the shared test seed. */
Rng testRng(std::string_view label = "test");

/** @p blocks blocks of deterministic paragraph-structured corpus text. */
core::Bytes corpusBlocks(size_t blocks, uint64_t seed = kTestSeed);

/** The 256-byte slice of @p data belonging to @p block. Panics if the
 *  slice would run past the end of @p data. */
core::Bytes blockSlice(const core::Bytes &data, uint64_t block);

/** A BlockDevice over the canonical primers, pre-loaded with @p data.
 *  Heap-allocated because BlockDevice is self-referential and
 *  non-movable. */
std::unique_ptr<core::BlockDevice> makeLoadedDevice(
    const core::BlockDeviceParams &params, const core::Bytes &data,
    uint16_t file_id = 13);

/**
 * Round-trip assertion: @p content (as returned by readBlock) decodes
 * and matches @p data's slice for @p block. Use with EXPECT_TRUE for a
 * message that names the block and the first diverging byte.
 */
testing::AssertionResult blockMatches(
    const std::optional<core::Bytes> &content, const core::Bytes &data,
    uint64_t block);

/** Outcome of a whole-device encode→decode round trip. */
struct RoundTrip {
    size_t blocks = 0;   ///< blocks in the device
    size_t decoded = 0;  ///< blocks that produced any content
    size_t exact = 0;    ///< blocks that matched the source bytes
    /** Message of the first non-matching block, for test diagnostics. */
    std::string first_mismatch;
};

/** readAll() the device and compare every block against @p data. */
RoundTrip roundTrip(core::BlockDevice &device, const core::Bytes &data);

} // namespace dnastore::test

#endif // DNASTORE_TESTS_SUPPORT_FIXTURES_H
