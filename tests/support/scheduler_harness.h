/**
 * @file
 * Deterministic scheduler harness for DecodeService fairness tests.
 *
 * Fairness under contention is inherently racy to observe from the
 * outside: whether two tenants' queues are both backlogged when a
 * batch dispatches depends on thread timing. This harness removes
 * every source of nondeterminism the scheduler contract allows:
 *
 *  - the service starts with dispatch paused, so a test scripts an
 *    entire contended backlog before a single batch runs;
 *  - token buckets (and latency stamps) read a workload::VirtualClock
 *    the test advances explicitly, so refill decisions are asserted
 *    exactly, not statistically;
 *  - the service's on_dispatch observer records the exact dispatch
 *    order (the dispatcher is single-threaded, so the order is total
 *    and, for a scripted backlog, identical for any pool size).
 *
 * Workload requests carry empty read sets: they decode to an empty
 * outcome instantly and deterministically, which is all a scheduling
 * assertion needs. Byte-identity of real decodes under tenancy is
 * pinned separately (decode_service_test, storage_frontend_test).
 *
 * The clock and dispatch-record types live in src/workload (the
 * simulator uses the same machinery at scale); the aliases below keep
 * existing test spellings working.
 *
 * SchedulerFixture is the shared gtest base: it owns the canonical
 * partition + single-thread decoder once per test and hands out
 * harnesses via harness(params), so suites stop re-wiring
 * clock_us/on_dispatch by hand.
 *
 * The harness is driven from one test thread (submitOne/statusOf are
 * not thread-safe against each other); the scripted schedule IS the
 * point.
 */

#ifndef DNASTORE_TESTS_SUPPORT_SCHEDULER_HARNESS_H
#define DNASTORE_TESTS_SUPPORT_SCHEDULER_HARNESS_H

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/decode_service.h"
#include "workload/simulator.h"
#include "workload/virtual_clock.h"

namespace dnastore::test {

/** Deterministic microsecond clock (now shared with the workload
 *  simulator); kept under the old test:: spelling. */
using VirtualClock = workload::VirtualClock;

/** One dispatched batch, as seen by the service's observer. */
using DispatchRecord = workload::DispatchRecord;

class SchedulerHarness
{
  public:
    /**
     * Wires @p params to the harness (virtual clock, dispatch
     * recorder, start_paused) and constructs the service. Any
     * clock_us/on_dispatch the caller set are overwritten; tenants,
     * threads, depth, policy, and metrics are the test's to choose.
     * Builds its own canonical partition + decoder.
     */
    explicit SchedulerHarness(core::DecodeServiceParams params);

    /** Same wiring, but submissions use @p decoder (owned by the
     *  caller — typically SchedulerFixture — and shared across
     *  harnesses; must outlive this harness). */
    SchedulerHarness(core::DecodeServiceParams params,
                     const core::Decoder &decoder);

    core::DecodeService &service() { return *service_; }
    VirtualClock &clock() { return clock_; }

    /** A live decoder for hand-built batches (mixed-tenant tests). */
    const core::Decoder &decoder() const { return *decoder_ptr_; }

    /** Submit one single-request batch of empty reads for @p tenant;
     *  returns the submission's index for statusOf(). */
    size_t submitOne(core::TenantId tenant);

    /** Release the (start-paused) dispatcher. */
    void resume();

    /** Wait until every submission so far has resolved. */
    void drain();

    /** The submission's final status (waits for its future). */
    core::DecodeStatus statusOf(size_t index);

    /** Dispatch order observed so far. Call after drain() for the
     *  complete scripted sequence. */
    std::vector<DispatchRecord> dispatches() const;

  private:
    void construct(core::DecodeServiceParams params);

    VirtualClock clock_;
    mutable std::mutex mutex_;
    std::vector<DispatchRecord> records_;  // guarded by mutex_

    std::unique_ptr<core::Partition> partition_;
    std::unique_ptr<core::Decoder> decoder_;
    const core::Decoder *decoder_ptr_ = nullptr;
    std::vector<std::future<core::DecodeOutcome>> futures_;
    std::vector<std::optional<core::DecodeOutcome>> outcomes_;

    // Declared last so the service (whose observer writes records_)
    // is destroyed before anything it touches.
    std::unique_ptr<core::DecodeService> service_;
};

/**
 * Shared fixture for scheduler-shaped suites (fair_scheduling_test,
 * workload_sim_test): one canonical partition + decoder per test, and
 * a harness(params) factory that reuses it. Call harness(...) once
 * per test; harness() with no arguments returns the same instance.
 */
class SchedulerFixture : public ::testing::Test
{
  protected:
    SchedulerFixture();
    ~SchedulerFixture() override;

    /** Build a fresh harness over the shared decoder (replacing any
     *  previous one — loops over pool sizes build one per
     *  iteration). */
    SchedulerHarness &harness(core::DecodeServiceParams params);

    /** The current harness (aborts when none was built yet). */
    SchedulerHarness &harness();

    /** The fixture's shared decoder (threads = 1, canonical
     *  partition 0) for hand-built services and batches. */
    const core::Decoder &decoder() const { return *decoder_; }

  private:
    std::unique_ptr<core::Partition> partition_;
    std::unique_ptr<core::Decoder> decoder_;
    std::unique_ptr<SchedulerHarness> harness_;
};

} // namespace dnastore::test

#endif // DNASTORE_TESTS_SUPPORT_SCHEDULER_HARNESS_H
