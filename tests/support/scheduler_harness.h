/**
 * @file
 * Deterministic scheduler harness for DecodeService fairness tests.
 *
 * Fairness under contention is inherently racy to observe from the
 * outside: whether two tenants' queues are both backlogged when a
 * batch dispatches depends on thread timing. This harness removes
 * every source of nondeterminism the scheduler contract allows:
 *
 *  - the service starts with dispatch paused, so a test scripts an
 *    entire contended backlog before a single batch runs;
 *  - token buckets read a VirtualClock the test advances explicitly,
 *    so refill decisions are asserted exactly, not statistically;
 *  - the service's on_dispatch observer records the exact dispatch
 *    order (the dispatcher is single-threaded, so the order is total
 *    and, for a scripted backlog, identical for any pool size).
 *
 * Workload requests carry empty read sets: they decode to an empty
 * outcome instantly and deterministically, which is all a scheduling
 * assertion needs. Byte-identity of real decodes under tenancy is
 * pinned separately (decode_service_test, storage_frontend_test).
 *
 * The harness is driven from one test thread (submitOne/statusOf are
 * not thread-safe against each other); the scripted schedule IS the
 * point.
 */

#ifndef DNASTORE_TESTS_SUPPORT_SCHEDULER_HARNESS_H
#define DNASTORE_TESTS_SUPPORT_SCHEDULER_HARNESS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/decode_service.h"

namespace dnastore::test {

/** Deterministic microsecond clock for token-bucket tests. */
class VirtualClock
{
  public:
    uint64_t
    nowUs() const
    {
        return now_us_.load(std::memory_order_relaxed);
    }

    void
    advanceUs(uint64_t us)
    {
        now_us_.fetch_add(us, std::memory_order_relaxed);
    }

    /** Plug into DecodeServiceParams::clock_us. The clock must
     *  outlive the service. */
    std::function<uint64_t()>
    source()
    {
        return [this] { return nowUs(); };
    }

  private:
    std::atomic<uint64_t> now_us_{0};
};

/** One dispatched batch, as seen by the service's observer. */
struct DispatchRecord
{
    core::TenantId tenant = core::kDefaultTenant;
    size_t requests = 0;

    bool operator==(const DispatchRecord &) const = default;
};

class SchedulerHarness
{
  public:
    /**
     * Wires @p params to the harness (virtual clock, dispatch
     * recorder, start_paused) and constructs the service. Any
     * clock_us/on_dispatch the caller set are overwritten; tenants,
     * threads, depth, policy, and metrics are the test's to choose.
     */
    explicit SchedulerHarness(core::DecodeServiceParams params);

    core::DecodeService &service() { return *service_; }
    VirtualClock &clock() { return clock_; }

    /** A live decoder for hand-built batches (mixed-tenant tests). */
    const core::Decoder &decoder() const { return *decoder_; }

    /** Submit one single-request batch of empty reads for @p tenant;
     *  returns the submission's index for statusOf(). */
    size_t submitOne(core::TenantId tenant);

    /** Release the (start-paused) dispatcher. */
    void resume();

    /** Wait until every submission so far has resolved. */
    void drain();

    /** The submission's final status (waits for its future). */
    core::DecodeStatus statusOf(size_t index);

    /** Dispatch order observed so far. Call after drain() for the
     *  complete scripted sequence. */
    std::vector<DispatchRecord> dispatches() const;

  private:
    VirtualClock clock_;
    mutable std::mutex mutex_;
    std::vector<DispatchRecord> records_;  // guarded by mutex_

    std::unique_ptr<core::Partition> partition_;
    std::unique_ptr<core::Decoder> decoder_;
    std::vector<std::future<core::DecodeOutcome>> futures_;
    std::vector<std::optional<core::DecodeOutcome>> outcomes_;

    // Declared last so the service (whose observer writes records_)
    // is destroyed before anything it touches.
    std::unique_ptr<core::DecodeService> service_;
};

} // namespace dnastore::test

#endif // DNASTORE_TESTS_SUPPORT_SCHEDULER_HARNESS_H
