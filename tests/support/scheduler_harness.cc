#include "support/scheduler_harness.h"

#include <utility>

#include "common/error.h"
#include "support/fixtures.h"

namespace dnastore::test {

namespace {

std::unique_ptr<core::Partition>
canonicalPartition()
{
    const PrimerPair &primers = primerPair(0);
    return std::make_unique<core::Partition>(
        partitionConfig(0), primers.forward, primers.reverse, 13);
}

std::unique_ptr<core::Decoder>
canonicalDecoder(const core::Partition &partition)
{
    core::DecoderParams decoder_params;
    decoder_params.threads = 1;
    return std::make_unique<core::Decoder>(partition, decoder_params);
}

} // namespace

SchedulerHarness::SchedulerHarness(core::DecodeServiceParams params)
{
    partition_ = canonicalPartition();
    decoder_ = canonicalDecoder(*partition_);
    decoder_ptr_ = decoder_.get();
    construct(std::move(params));
}

SchedulerHarness::SchedulerHarness(core::DecodeServiceParams params,
                                   const core::Decoder &decoder)
{
    decoder_ptr_ = &decoder;
    construct(std::move(params));
}

void
SchedulerHarness::construct(core::DecodeServiceParams params)
{
    params.clock_us = clock_.source();
    params.on_dispatch = [this](core::TenantId tenant,
                                size_t requests) {
        std::lock_guard<std::mutex> lock(mutex_);
        records_.push_back(DispatchRecord{tenant, requests});
    };
    params.start_paused = true;
    service_ = std::make_unique<core::DecodeService>(std::move(params));
}

size_t
SchedulerHarness::submitOne(core::TenantId tenant)
{
    futures_.push_back(service_->submit(*decoder_ptr_, {}, tenant));
    outcomes_.emplace_back();
    return futures_.size() - 1;
}

void
SchedulerHarness::resume()
{
    service_->resumeDispatch();
}

void
SchedulerHarness::drain()
{
    for (size_t i = 0; i < futures_.size(); ++i)
        (void)statusOf(i);
}

core::DecodeStatus
SchedulerHarness::statusOf(size_t index)
{
    if (!outcomes_.at(index))
        outcomes_[index] = futures_[index].get();
    return outcomes_[index]->status;
}

std::vector<DispatchRecord>
SchedulerHarness::dispatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

SchedulerFixture::SchedulerFixture()
{
    partition_ = canonicalPartition();
    decoder_ = canonicalDecoder(*partition_);
}

SchedulerFixture::~SchedulerFixture() = default;

SchedulerHarness &
SchedulerFixture::harness(core::DecodeServiceParams params)
{
    harness_.reset();  // drain/join the old service before reusing
    harness_ = std::make_unique<SchedulerHarness>(std::move(params),
                                                  *decoder_);
    return *harness_;
}

SchedulerHarness &
SchedulerFixture::harness()
{
    fatalIf(harness_ == nullptr,
            "SchedulerFixture: harness() before harness(params)");
    return *harness_;
}

} // namespace dnastore::test
