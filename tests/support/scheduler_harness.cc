#include "support/scheduler_harness.h"

#include <utility>

#include "support/fixtures.h"

namespace dnastore::test {

SchedulerHarness::SchedulerHarness(core::DecodeServiceParams params)
{
    const PrimerPair &primers = primerPair(0);
    partition_ = std::make_unique<core::Partition>(
        partitionConfig(0), primers.forward, primers.reverse, 13);
    core::DecoderParams decoder_params;
    decoder_params.threads = 1;
    decoder_ = std::make_unique<core::Decoder>(*partition_,
                                               decoder_params);

    params.clock_us = clock_.source();
    params.on_dispatch = [this](core::TenantId tenant,
                                size_t requests) {
        std::lock_guard<std::mutex> lock(mutex_);
        records_.push_back(DispatchRecord{tenant, requests});
    };
    params.start_paused = true;
    service_ = std::make_unique<core::DecodeService>(std::move(params));
}

size_t
SchedulerHarness::submitOne(core::TenantId tenant)
{
    futures_.push_back(service_->submit(*decoder_, {}, tenant));
    outcomes_.emplace_back();
    return futures_.size() - 1;
}

void
SchedulerHarness::resume()
{
    service_->resumeDispatch();
}

void
SchedulerHarness::drain()
{
    for (size_t i = 0; i < futures_.size(); ++i)
        (void)statusOf(i);
}

core::DecodeStatus
SchedulerHarness::statusOf(size_t index)
{
    if (!outcomes_.at(index))
        outcomes_[index] = futures_[index].get();
    return outcomes_[index]->status;
}

std::vector<DispatchRecord>
SchedulerHarness::dispatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

} // namespace dnastore::test
