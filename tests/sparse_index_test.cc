/**
 * @file
 * Property tests for the PCR-navigable sparse index tree: these
 * verify every invariant Section 4.3 claims for the construction.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dna/analysis.h"
#include "dna/distance.h"
#include "index/sparse_index.h"

namespace dnastore::index {
namespace {

TEST(SparseIndexTest, GeometryAndDeterminism)
{
    SparseIndexTree tree(42, 5);
    EXPECT_EQ(tree.depth(), 5u);
    EXPECT_EQ(tree.leafCount(), 1024u);
    EXPECT_EQ(tree.physicalLength(), 10u);

    SparseIndexTree again(42, 5);
    for (uint64_t block : {0u, 1u, 531u, 1023u})
        EXPECT_EQ(tree.leafIndex(block), again.leafIndex(block));
}

TEST(SparseIndexTest, DifferentSeedsDifferentTrees)
{
    // Section 4.4: different partitions use different seeds to get
    // vastly different trees.
    SparseIndexTree a(1, 5), b(2, 5);
    size_t differing = 0;
    for (uint64_t block = 0; block < 64; ++block) {
        if (a.leafIndex(block) != b.leafIndex(block))
            ++differing;
    }
    EXPECT_GT(differing, 48u);
}

TEST(SparseIndexTest, LeavesAreUnique)
{
    SparseIndexTree tree(7, 5);
    std::set<std::string> seen;
    for (uint64_t block = 0; block < tree.leafCount(); ++block)
        seen.insert(tree.leafIndex(block).str());
    EXPECT_EQ(seen.size(), tree.leafCount());
}

TEST(SparseIndexTest, EdgeOrderIsAPermutation)
{
    SparseIndexTree tree(11, 4);
    for (Prefix path : std::vector<Prefix>{{}, {0}, {3, 2}, {1, 1, 1}}) {
        auto edges = tree.edgeOrder(path);
        std::set<dna::Base> unique(edges.begin(), edges.end());
        EXPECT_EQ(unique.size(), 4u);
    }
}

TEST(SparseIndexTest, SpacersAreOppositeGcClass)
{
    // The spacer after every edge has the opposite GC class, and the
    // two same-class edges of a node get distinct spacers.
    SparseIndexTree tree(13, 4);
    for (Prefix path : std::vector<Prefix>{{}, {2}, {0, 3}, {1, 2, 0}}) {
        auto edges = tree.edgeOrder(path);
        auto spacers = tree.spacerOrder(path);
        std::set<dna::Base> strong_spacers, weak_spacers;
        for (size_t child = 0; child < 4; ++child) {
            EXPECT_NE(dna::isStrong(edges[child]),
                      dna::isStrong(spacers[child]));
            if (dna::isStrong(spacers[child]))
                strong_spacers.insert(spacers[child]);
            else
                weak_spacers.insert(spacers[child]);
        }
        EXPECT_EQ(strong_spacers.size(), 2u);
        EXPECT_EQ(weak_spacers.size(), 2u);
    }
}

TEST(SparseIndexTest, DecodeRoundTrip)
{
    SparseIndexTree tree(17, 5);
    for (uint64_t block = 0; block < tree.leafCount(); block += 13) {
        auto match = tree.decode(tree.leafIndex(block));
        ASSERT_TRUE(match.has_value()) << "block " << block;
        EXPECT_EQ(match->block, block);
    }
}

TEST(SparseIndexTest, DecodeWithVersionBase)
{
    SparseIndexTree tree(19, 5);
    for (uint64_t block : {0u, 144u, 307u, 531u}) {
        for (unsigned version = 0;
             version < SparseIndexTree::kVersionSlots; ++version) {
            auto match =
                tree.decode(tree.physicalAddress(block, version));
            ASSERT_TRUE(match.has_value());
            EXPECT_EQ(match->block, block);
            EXPECT_EQ(match->version, version);
        }
    }
}

TEST(SparseIndexTest, VersionBasesAreDistinct)
{
    SparseIndexTree tree(23, 5);
    for (uint64_t block : {5u, 243u, 374u, 556u}) {
        std::set<dna::Base> bases;
        for (unsigned v = 0; v < SparseIndexTree::kVersionSlots; ++v)
            bases.insert(tree.versionBase(block, v));
        EXPECT_EQ(bases.size(), 4u);
    }
}

TEST(SparseIndexTest, DecodeNearestReturnsANearestLeaf)
{
    // A single corrupted base leaves the true leaf at Hamming
    // distance 1. decodeNearest must return *a* leaf at distance 1
    // (rarely the corrupted index is equidistant from two leaves —
    // the same ambiguity mispriming exploits), and its reported
    // mismatch count must equal the true distance of that leaf.
    SparseIndexTree tree(29, 5);
    size_t exact = 0;
    size_t total = 0;
    for (uint64_t block = 0; block < 1024; block += 37) {
        dna::Sequence index = tree.leafIndex(block);
        std::string s = index.str();
        s[3] = s[3] == 'A' ? 'C' : 'A';
        dna::Sequence corrupted(s);
        IndexMatch match = tree.decodeNearest(corrupted);
        EXPECT_LE(match.mismatches, 1u) << "block " << block;
        EXPECT_EQ(dna::hammingDistance(tree.leafIndex(match.block),
                                       corrupted),
                  match.mismatches)
            << "block " << block;
        exact += match.block == block ? 1 : 0;
        ++total;
    }
    // Ambiguity is rare: the vast majority must decode exactly.
    EXPECT_GE(exact * 10, total * 9);
}

TEST(SparseIndexTest, PhysicalPrefixIsLeafPrefix)
{
    // The physical index of a leaf extends the physical prefix of
    // every ancestor — the property elongated primers rely on.
    SparseIndexTree tree(31, 5);
    for (uint64_t block : {0u, 100u, 531u, 1023u}) {
        Prefix digits = codec::toBase4(block, 5);
        dna::Sequence leaf = tree.leafIndex(block);
        for (size_t len = 1; len <= 5; ++len) {
            Prefix ancestor(digits.begin(),
                            digits.begin() + static_cast<long>(len));
            dna::Sequence prefix = tree.physicalPrefix(ancestor);
            EXPECT_TRUE(leaf.startsWith(prefix))
                << "block " << block << " len " << len;
        }
    }
}

/** Parameterized invariants across seeds and depths (Section 4.3). */
class SparseInvariantTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>>
{};

TEST_P(SparseInvariantTest, GcBalancedEveryEvenPrefix)
{
    auto [seed, depth] = GetParam();
    SparseIndexTree tree(seed, depth);
    uint64_t step = std::max<uint64_t>(1, tree.leafCount() / 128);
    for (uint64_t block = 0; block < tree.leafCount(); block += step) {
        dna::Sequence index = tree.leafIndex(block);
        size_t strong = 0;
        for (size_t i = 0; i < index.size(); ++i) {
            if (dna::isStrongChar(index[i]))
                ++strong;
            if (i % 2 == 1) {
                // Every (edge, spacer) chunk: exactly one strong base.
                EXPECT_EQ(2 * strong, i + 1);
            }
        }
    }
}

TEST_P(SparseInvariantTest, NoHomopolymerLongerThanTwo)
{
    auto [seed, depth] = GetParam();
    SparseIndexTree tree(seed, depth);
    uint64_t step = std::max<uint64_t>(1, tree.leafCount() / 128);
    for (uint64_t block = 0; block < tree.leafCount(); block += step) {
        EXPECT_LE(dna::maxHomopolymerRun(tree.leafIndex(block)), 2u);
    }
}

TEST_P(SparseInvariantTest, SiblingsDifferByTwoPerChunk)
{
    auto [seed, depth] = GetParam();
    SparseIndexTree tree(seed, depth);
    // Siblings share all chunks except the last; the last chunk
    // differs in both edge and spacer -> Hamming distance exactly 2.
    uint64_t step = std::max<uint64_t>(4, tree.leafCount() / 64);
    for (uint64_t base = 0; base + 3 < tree.leafCount(); base += step) {
        uint64_t family = base - base % 4;
        for (unsigned a = 0; a < 4; ++a) {
            for (unsigned b = a + 1; b < 4; ++b) {
                size_t dist = dna::hammingDistance(
                    tree.leafIndex(family + a),
                    tree.leafIndex(family + b));
                EXPECT_EQ(dist, 2u);
            }
        }
    }
}

TEST_P(SparseInvariantTest, SparsityDoublesAverageDistance)
{
    // Section 4.3: randomized sparsity increases the average Hamming
    // distance between indexes by about 2x relative to dense base-4
    // indexes (each mismatching level contributes ~2 mismatching
    // bases instead of ~1). Allow sampling slack around the 2x.
    auto [seed, depth] = GetParam();
    SparseIndexTree tree(seed, depth);
    dnastore::Rng rng(seed);
    double dense_total = 0.0, sparse_total = 0.0;
    const int samples = 300;
    for (int i = 0; i < samples; ++i) {
        uint64_t a = rng.nextBelow(tree.leafCount());
        uint64_t b = rng.nextBelow(tree.leafCount());
        if (a == b)
            b = (b + 1) % tree.leafCount();
        codec::Digits da = codec::toBase4(a, depth);
        codec::Digits db = codec::toBase4(b, depth);
        size_t dense = 0;
        for (size_t k = 0; k < depth; ++k)
            dense += da[k] != db[k] ? 1 : 0;
        dense_total += static_cast<double>(dense);
        sparse_total += static_cast<double>(dna::hammingDistance(
            tree.leafIndex(a), tree.leafIndex(b)));
    }
    EXPECT_GE(sparse_total, 1.8 * dense_total);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDepths, SparseInvariantTest,
    ::testing::Combine(::testing::Values(1u, 42u, 0x1dc0ffeeu),
                       ::testing::Values(size_t{3}, size_t{5},
                                         size_t{7})));

} // namespace
} // namespace dnastore::index
