/**
 * @file
 * Tests for the constrained rotation codec (Section 2.1.1).
 */

#include <gtest/gtest.h>

#include "codec/constrained.h"
#include "common/error.h"
#include "common/rng.h"
#include "dna/analysis.h"

namespace dnastore::codec {
namespace {

TEST(RotationCodecTest, RoundTrip)
{
    dnastore::Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data(1 + rng.nextBelow(200));
        for (uint8_t &byte : data)
            byte = static_cast<uint8_t>(rng.nextBelow(256));
        dna::Sequence encoded = RotationCodec::encode(data);
        EXPECT_EQ(RotationCodec::decode(encoded, data.size()), data);
    }
}

TEST(RotationCodecTest, NoHomopolymersEver)
{
    dnastore::Rng rng(2);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<uint8_t> data(64);
        for (uint8_t &byte : data)
            byte = static_cast<uint8_t>(rng.nextBelow(256));
        dna::Sequence encoded = RotationCodec::encode(data);
        EXPECT_EQ(dna::maxHomopolymerRun(encoded), 1u);
    }
}

TEST(RotationCodecTest, WorstCaseInputStaysConstrained)
{
    // All-zero and all-0xFF inputs defeat scramble-free dense
    // codecs; the rotation codec must stay homopolymer-free.
    for (uint8_t fill : {uint8_t{0x00}, uint8_t{0xff}, uint8_t{0xaa}}) {
        std::vector<uint8_t> data(128, fill);
        dna::Sequence encoded = RotationCodec::encode(data);
        EXPECT_EQ(dna::maxHomopolymerRun(encoded), 1u);
    }
}

TEST(RotationCodecTest, DensityCostVsUnconstrained)
{
    // 2.0 / (21 trits per 32 bits) = the paper's density argument.
    std::vector<uint8_t> data(240);
    dna::Sequence encoded = RotationCodec::encode(data);
    double bases_per_byte =
        static_cast<double>(encoded.size()) / 240.0;
    // Unconstrained: 4 bases/byte. Rotation: 21/4 = 5.25 bases/byte.
    EXPECT_NEAR(bases_per_byte, 5.25, 0.01);
    double density = 8.0 / bases_per_byte;
    EXPECT_LT(density, 2.0);
    EXPECT_NEAR(density, 1.52, 0.05);
}

TEST(RotationCodecTest, EncodedLengthFormula)
{
    EXPECT_EQ(RotationCodec::encodedLength(0), 0u);
    EXPECT_EQ(RotationCodec::encodedLength(1), 21u);
    EXPECT_EQ(RotationCodec::encodedLength(4), 21u);
    EXPECT_EQ(RotationCodec::encodedLength(5), 42u);
    EXPECT_EQ(RotationCodec::encode(std::vector<uint8_t>(24)).size(),
              RotationCodec::encodedLength(24));
}

TEST(RotationCodecTest, DecodeRejectsWrongLength)
{
    EXPECT_THROW(
        RotationCodec::decode(dna::Sequence("ACGT"), 4),
        dnastore::FatalError);
}

} // namespace
} // namespace dnastore::codec
