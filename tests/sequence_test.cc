/**
 * @file
 * Unit tests for the Sequence type and nucleotide helpers.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "dna/sequence.h"

namespace dnastore::dna {
namespace {

TEST(BaseTest, CharRoundTrip)
{
    for (Base base : kAllBases)
        EXPECT_EQ(charToBase(baseToChar(base)), base);
}

TEST(BaseTest, InvalidCharThrows)
{
    EXPECT_THROW(charToBase('N'), FatalError);
    EXPECT_THROW(charToBase('a'), FatalError);
}

TEST(BaseTest, Complement)
{
    EXPECT_EQ(complement(Base::A), Base::T);
    EXPECT_EQ(complement(Base::T), Base::A);
    EXPECT_EQ(complement(Base::C), Base::G);
    EXPECT_EQ(complement(Base::G), Base::C);
}

TEST(BaseTest, StrongWeakClasses)
{
    EXPECT_TRUE(isStrong(Base::C));
    EXPECT_TRUE(isStrong(Base::G));
    EXPECT_FALSE(isStrong(Base::A));
    EXPECT_FALSE(isStrong(Base::T));
}

TEST(SequenceTest, ValidatesAlphabet)
{
    EXPECT_NO_THROW(Sequence("ACGT"));
    EXPECT_THROW(Sequence("ACGU"), FatalError);
    EXPECT_THROW(Sequence("acgt"), FatalError);
}

TEST(SequenceTest, SizeAndIndexing)
{
    Sequence seq("GATTACA");
    EXPECT_EQ(seq.size(), 7u);
    EXPECT_EQ(seq[0], 'G');
    EXPECT_EQ(seq.baseAt(1), Base::A);
    EXPECT_FALSE(seq.empty());
    EXPECT_TRUE(Sequence().empty());
}

TEST(SequenceTest, FromBasesRoundTrip)
{
    std::vector<Base> bases = {Base::G, Base::C, Base::A, Base::T};
    Sequence seq(bases);
    EXPECT_EQ(seq.str(), "GCAT");
    EXPECT_EQ(seq.toBases(), bases);
}

TEST(SequenceTest, RunConstructor)
{
    Sequence seq(5, Base::C);
    EXPECT_EQ(seq.str(), "CCCCC");
}

TEST(SequenceTest, Concatenation)
{
    Sequence a("ACG");
    Sequence b("TTT");
    EXPECT_EQ((a + b).str(), "ACGTTT");
    a += b;
    EXPECT_EQ(a.str(), "ACGTTT");
}

TEST(SequenceTest, Substr)
{
    Sequence seq("ACGTACGT");
    EXPECT_EQ(seq.substr(2, 3).str(), "GTA");
    EXPECT_EQ(seq.substr(6).str(), "GT");
    EXPECT_EQ(seq.substr(100).str(), "");
}

TEST(SequenceTest, StartsEndsWith)
{
    Sequence seq("ACGTAC");
    EXPECT_TRUE(seq.startsWith(Sequence("ACG")));
    EXPECT_FALSE(seq.startsWith(Sequence("CG")));
    EXPECT_TRUE(seq.endsWith(Sequence("TAC")));
    EXPECT_FALSE(seq.endsWith(Sequence("ACG")));
    EXPECT_TRUE(seq.startsWith(Sequence()));
}

TEST(SequenceTest, ReverseComplement)
{
    EXPECT_EQ(Sequence("ACGT").reverseComplement().str(), "ACGT");
    EXPECT_EQ(Sequence("AACC").reverseComplement().str(), "GGTT");
    EXPECT_EQ(Sequence("A").reverseComplement().str(), "T");
}

TEST(SequenceTest, ReverseComplementIsInvolution)
{
    Sequence seq("GATTACAGGTC");
    EXPECT_EQ(seq.reverseComplement().reverseComplement(), seq);
}

TEST(SequenceTest, Ordering)
{
    EXPECT_LT(Sequence("AAA"), Sequence("AAC"));
    EXPECT_EQ(Sequence("ACG"), Sequence("ACG"));
}

TEST(SequenceTest, PushBack)
{
    Sequence seq;
    seq.push_back(Base::T);
    seq.push_back(Base::G);
    EXPECT_EQ(seq.str(), "TG");
}

} // namespace
} // namespace dnastore::dna
