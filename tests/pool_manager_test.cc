/**
 * @file
 * Tests for the multi-partition PoolManager and the two-stage PCR
 * protocol (Sections 6.1 and 7.7.3).
 */

#include <gtest/gtest.h>

#include "core/pool_manager.h"
#include "corpus/text.h"
#include "support/fixtures.h"

namespace dnastore::core {
namespace {

PoolManagerParams
smallParams()
{
    PoolManagerParams params;
    params.reads_per_block_access = 1000;
    return params;
}

TEST(PoolManagerTest, StoresMultipleFiles)
{
    PoolManager manager(smallParams());
    size_t pairs_before = manager.primerPairsAvailable();
    uint32_t a = manager.storeFile(test::corpusBlocks(6, 1));
    uint32_t b = manager.storeFile(test::corpusBlocks(9, 2));
    EXPECT_NE(a, b);
    EXPECT_EQ(manager.fileCount(), 2u);
    EXPECT_EQ(manager.blockCount(a), 6u);
    EXPECT_EQ(manager.blockCount(b), 9u);
    EXPECT_EQ(manager.primerPairsAvailable(), pairs_before - 2);
    EXPECT_EQ(manager.pool().speciesCount(), (6u + 9u) * 15u);
}

TEST(PoolManagerTest, PartitionsGetDistinctPrimersAndSeeds)
{
    PoolManager manager(smallParams());
    uint32_t a = manager.storeFile(test::corpusBlocks(4, 3));
    uint32_t b = manager.storeFile(test::corpusBlocks(4, 4));
    EXPECT_NE(manager.partition(a).forwardPrimer(),
              manager.partition(b).forwardPrimer());
    EXPECT_NE(manager.partition(a).tree().seed(),
              manager.partition(b).tree().seed());
}

TEST(PoolManagerTest, TwoStageBlockReadAcrossFiles)
{
    PoolManager manager(smallParams());
    Bytes file_a = test::corpusBlocks(8, 5);
    Bytes file_b = test::corpusBlocks(8, 6);
    uint32_t a = manager.storeFile(file_a);
    uint32_t b = manager.storeFile(file_b);

    auto block_a = manager.readBlock(a, 3);
    ASSERT_TRUE(block_a.has_value());
    EXPECT_TRUE(std::equal(block_a->begin(), block_a->end(),
                           file_a.begin() + 3 * 256));

    auto block_b = manager.readBlock(b, 7);
    ASSERT_TRUE(block_b.has_value());
    EXPECT_TRUE(std::equal(block_b->begin(), block_b->end(),
                           file_b.begin() + 7 * 256));
}

TEST(PoolManagerTest, ReadFileRoundTrip)
{
    PoolManager manager(smallParams());
    Bytes data = corpus::generateBytes(5 * test::kBlockBytes + 100, 7);
    uint32_t id = manager.storeFile(data);
    auto recovered = manager.readFile(id);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, data);
}

TEST(PoolManagerTest, UpdateAppliedOnRead)
{
    PoolManager manager(smallParams());
    Bytes data = test::corpusBlocks(6, 8);
    uint32_t id = manager.storeFile(data);

    UpdateOp op;
    op.delete_pos = 0;
    op.delete_len = 1;
    op.insert_pos = 0;
    op.insert_bytes = {'@'};
    manager.updateBlock(id, 2, op);

    auto content = manager.readBlock(id, 2);
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ((*content)[0], '@');
    EXPECT_TRUE(std::equal(content->begin() + 1, content->end(),
                           data.begin() + 2 * 256 + 1));
}

TEST(PoolManagerTest, ErrorsOnUnknownIds)
{
    PoolManager manager(smallParams());
    uint32_t id = manager.storeFile(test::corpusBlocks(1, 9));
    EXPECT_THROW(manager.readBlock(id + 1, 0), dnastore::FatalError);
    EXPECT_THROW(manager.readBlock(id, 99), dnastore::FatalError);
    EXPECT_THROW(manager.blockCount(42), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::core
