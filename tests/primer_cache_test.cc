/**
 * @file
 * Tests for the elongated-primer cache (Section 7.7.4).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/primer_cache.h"
#include "index/sparse_index.h"

namespace dnastore::core {
namespace {

const dna::Sequence kIndex("ACGTACGTAC");

TEST(PrimerCacheTest, MissThenHit)
{
    PrimerCache cache(4);
    EXPECT_FALSE(cache.request(531, kIndex));
    EXPECT_TRUE(cache.request(531, kIndex));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().bases_synthesized, 10u);
}

TEST(PrimerCacheTest, EvictsLeastRecentlyUsed)
{
    PrimerCache cache(2);
    cache.request(1, kIndex);
    cache.request(2, kIndex);
    cache.request(1, kIndex);  // 1 is now most recent
    cache.request(3, kIndex);  // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PrimerCacheTest, CapacityRespected)
{
    PrimerCache cache(8);
    for (uint64_t block = 0; block < 100; ++block)
        cache.request(block, kIndex);
    EXPECT_EQ(cache.size(), 8u);
}

TEST(PrimerCacheTest, ZipfianWorkloadAmortizes)
{
    // The paper's argument: Zipfian popularity means a small cache
    // of elongations absorbs most requests.
    index::SparseIndexTree tree(1, 5);
    // Zipf(1) mass in the top 64 of 1024 blocks is ~63%, so a
    // 64-entry cache must absorb the majority of requests.
    PrimerCache cache(64);
    dnastore::Rng rng(9);
    // Zipf(1.0) over 1024 blocks via inverse-CDF sampling.
    std::vector<double> cdf(1024);
    double mass = 0.0;
    for (size_t b = 0; b < cdf.size(); ++b) {
        mass += 1.0 / static_cast<double>(b + 1);
        cdf[b] = mass;
    }
    for (double &value : cdf)
        value /= mass;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.nextDouble();
        auto block = static_cast<uint64_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        cache.request(block, tree.leafIndex(block));
    }
    EXPECT_GT(cache.stats().hitRate(), 0.5);
    // Synthesis happened for far fewer elongations than requests.
    EXPECT_LT(cache.stats().misses, 10000u);
}

TEST(PrimerCacheTest, ZeroCapacityRejected)
{
    EXPECT_THROW(PrimerCache(0), dnastore::FatalError);
}

} // namespace
} // namespace dnastore::core
