/**
 * @file
 * Unit tests for the Figure 1c encoding-unit matrix codec.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "ecc/encoding_unit.h"

namespace dnastore::ecc {
namespace {

Bytes
randomUnit(dnastore::Rng &rng, size_t size)
{
    Bytes data(size);
    for (uint8_t &byte : data)
        byte = static_cast<uint8_t>(rng.nextBelow(256));
    return data;
}

TEST(EncodingUnitTest, PaperGeometry)
{
    EncodingUnitCodec codec(15, 11, 24);
    EXPECT_EQ(codec.dataBytes(), 264u);
    EXPECT_EQ(codec.rows(), 48u);
}

TEST(EncodingUnitTest, EncodeShape)
{
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(1);
    std::vector<Bytes> columns = codec.encode(randomUnit(rng, 264));
    ASSERT_EQ(columns.size(), 15u);
    for (const Bytes &column : columns)
        EXPECT_EQ(column.size(), 24u);
}

TEST(EncodingUnitTest, CleanRoundTrip)
{
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(2);
    Bytes unit = randomUnit(rng, 264);
    std::vector<Bytes> columns = codec.encode(unit);
    std::vector<std::optional<Bytes>> received(columns.begin(),
                                               columns.end());
    UnitDecodeResult result = codec.decode(received);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.data, unit);
    EXPECT_EQ(result.symbol_errors_corrected, 0u);
}

TEST(EncodingUnitTest, DataColumnsAreSystematic)
{
    // Column c of the encoding holds bytes [c*24, (c+1)*24) of the
    // unit payload (Figure 1c column-major layout).
    EncodingUnitCodec codec(15, 11, 24);
    Bytes unit(264);
    for (size_t i = 0; i < unit.size(); ++i)
        unit[i] = static_cast<uint8_t>(i & 0xff);
    std::vector<Bytes> columns = codec.encode(unit);
    for (unsigned c = 0; c < 11; ++c) {
        Bytes expected(unit.begin() + c * 24,
                       unit.begin() + (c + 1) * 24);
        EXPECT_EQ(columns[c], expected) << "column " << c;
    }
}

TEST(EncodingUnitTest, RecoversFourLostMolecules)
{
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(3);
    Bytes unit = randomUnit(rng, 264);
    std::vector<Bytes> columns = codec.encode(unit);
    std::vector<std::optional<Bytes>> received(columns.begin(),
                                               columns.end());
    received[1].reset();
    received[5].reset();
    received[11].reset();
    received[14].reset();
    UnitDecodeResult result = codec.decode(received);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.data, unit);
    EXPECT_EQ(result.erasures_filled, 4u * 48u);
}

TEST(EncodingUnitTest, FiveLostMoleculesFail)
{
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(4);
    std::vector<Bytes> columns = codec.encode(randomUnit(rng, 264));
    std::vector<std::optional<Bytes>> received(columns.begin(),
                                               columns.end());
    for (size_t c = 0; c < 5; ++c)
        received[c].reset();
    UnitDecodeResult result = codec.decode(received);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.failed_rows.empty());
}

TEST(EncodingUnitTest, CorrectsCorruptedMolecule)
{
    // One wrong molecule = 1 symbol error per row: correctable.
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(5);
    Bytes unit = randomUnit(rng, 264);
    std::vector<Bytes> columns = codec.encode(unit);
    std::vector<std::optional<Bytes>> received(columns.begin(),
                                               columns.end());
    for (uint8_t &byte : *received[3])
        byte ^= 0x5a;
    UnitDecodeResult result = codec.decode(received);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.data, unit);
    EXPECT_GT(result.symbol_errors_corrected, 0u);
}

TEST(EncodingUnitTest, TwoCorruptPlusNoneLost)
{
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(6);
    Bytes unit = randomUnit(rng, 264);
    std::vector<Bytes> columns = codec.encode(unit);
    std::vector<std::optional<Bytes>> received(columns.begin(),
                                               columns.end());
    for (uint8_t &byte : *received[2])
        byte ^= 0x11;
    for (uint8_t &byte : *received[9])
        byte ^= 0x33;
    UnitDecodeResult result = codec.decode(received);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.data, unit);
}

TEST(EncodingUnitTest, MixedLossAndCorruption)
{
    // 2 erasures + 1 error: 2*1 + 2 = 4 <= n - k.
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(7);
    Bytes unit = randomUnit(rng, 264);
    std::vector<Bytes> columns = codec.encode(unit);
    std::vector<std::optional<Bytes>> received(columns.begin(),
                                               columns.end());
    received[0].reset();
    received[7].reset();
    for (uint8_t &byte : *received[12])
        byte ^= 0x0f;
    UnitDecodeResult result = codec.decode(received);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.data, unit);
}

TEST(EncodingUnitTest, WrongColumnSizeRejected)
{
    EncodingUnitCodec codec(15, 11, 24);
    std::vector<std::optional<Bytes>> received(15, Bytes(24, 0));
    received[0] = Bytes(23, 0);
    EXPECT_THROW(codec.decode(received), dnastore::FatalError);
}

TEST(EncodingUnitTest, WrongUnitSizeRejected)
{
    EncodingUnitCodec codec(15, 11, 24);
    EXPECT_THROW(codec.encode(Bytes(263)), dnastore::FatalError);
}

/** Property sweep over erasure counts. */
class UnitErasureTest : public ::testing::TestWithParam<int>
{};

TEST_P(UnitErasureTest, ErasuresUpToFourRecover)
{
    int losses = GetParam();
    EncodingUnitCodec codec(15, 11, 24);
    dnastore::Rng rng(50 + losses);
    for (int trial = 0; trial < 10; ++trial) {
        Bytes unit = randomUnit(rng, 264);
        std::vector<Bytes> columns = codec.encode(unit);
        std::vector<std::optional<Bytes>> received(columns.begin(),
                                                   columns.end());
        std::vector<size_t> positions = {0, 1, 2, 3, 4, 5, 6, 7,
                                         8, 9, 10, 11, 12, 13, 14};
        rng.shuffle(positions);
        for (int l = 0; l < losses; ++l)
            received[positions[l]].reset();
        UnitDecodeResult result = codec.decode(received);
        ASSERT_TRUE(result.ok()) << "losses=" << losses;
        EXPECT_EQ(*result.data, unit);
    }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, UnitErasureTest,
                         ::testing::Values(0, 1, 2, 3, 4));

} // namespace
} // namespace dnastore::ecc
