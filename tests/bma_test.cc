/**
 * @file
 * Tests for double-sided BMA trace reconstruction.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "consensus/bma.h"
#include "dna/distance.h"

namespace dnastore::consensus {
namespace {

dna::Sequence
randomSeq(dnastore::Rng &rng, size_t len)
{
    std::vector<dna::Base> bases(len);
    for (dna::Base &base : bases)
        base = static_cast<dna::Base>(rng.nextBelow(4));
    return dna::Sequence(bases);
}

dna::Sequence
idsNoise(dnastore::Rng &rng, const dna::Sequence &seq, double sub,
         double ins, double del)
{
    std::vector<dna::Base> out;
    for (size_t i = 0; i < seq.size(); ++i) {
        while (rng.nextBool(ins))
            out.push_back(static_cast<dna::Base>(rng.nextBelow(4)));
        if (rng.nextBool(del))
            continue;
        dna::Base base = seq.baseAt(i);
        if (rng.nextBool(sub)) {
            base = static_cast<dna::Base>(
                (static_cast<uint8_t>(base) + 1 + rng.nextBelow(3)) % 4);
        }
        out.push_back(base);
    }
    return dna::Sequence(out);
}

TEST(BmaTest, CleanReadsReproduceExactly)
{
    dnastore::Rng rng(1);
    dna::Sequence original = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads(7, original);
    EXPECT_EQ(bmaForward(reads, 150), original);
    EXPECT_EQ(bmaDoubleSided(reads, 150), original);
}

TEST(BmaTest, SubstitutionsOutvoted)
{
    dnastore::Rng rng(2);
    dna::Sequence original = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 9; ++i)
        reads.push_back(idsNoise(rng, original, 0.03, 0.0, 0.0));
    EXPECT_EQ(bmaDoubleSided(reads, 150), original);
}

TEST(BmaTest, IndelsRecovered)
{
    dnastore::Rng rng(3);
    int exact = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
        dna::Sequence original = randomSeq(rng, 150);
        std::vector<dna::Sequence> reads;
        for (int i = 0; i < 10; ++i)
            reads.push_back(idsNoise(rng, original, 0.005, 0.005,
                                     0.005));
        if (bmaDoubleSided(reads, 150) == original)
            ++exact;
    }
    EXPECT_GE(exact, trials * 8 / 10);
}

TEST(BmaTest, DoubleSidedBeatsOneSidedUnderIndels)
{
    dnastore::Rng rng(4);
    size_t forward_errors = 0, double_errors = 0;
    for (int t = 0; t < 40; ++t) {
        dna::Sequence original = randomSeq(rng, 150);
        std::vector<dna::Sequence> reads;
        for (int i = 0; i < 6; ++i)
            reads.push_back(idsNoise(rng, original, 0.01, 0.01, 0.01));
        forward_errors += dna::levenshteinDistance(
            bmaForward(reads, 150), original);
        double_errors += dna::levenshteinDistance(
            bmaDoubleSided(reads, 150), original);
    }
    EXPECT_LE(double_errors, forward_errors);
}

TEST(BmaTest, OutputLengthIsAlwaysExpected)
{
    dnastore::Rng rng(5);
    dna::Sequence original = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 5; ++i)
        reads.push_back(idsNoise(rng, original, 0.05, 0.02, 0.02));
    EXPECT_EQ(bmaDoubleSided(reads, 150).size(), 150u);
    EXPECT_EQ(bmaDoubleSided(reads, 140).size(), 140u);
}

TEST(BmaTest, RefineDraftRepairsCorruptedDraft)
{
    dnastore::Rng rng(7);
    dna::Sequence original = randomSeq(rng, 150);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 8; ++i)
        reads.push_back(idsNoise(rng, original, 0.01, 0.0, 0.0));
    // Corrupt the draft in several positions; refinement must vote
    // them back.
    std::string draft = original.str();
    draft[10] = draft[10] == 'A' ? 'C' : 'A';
    draft[75] = draft[75] == 'G' ? 'T' : 'G';
    draft[140] = draft[140] == 'A' ? 'G' : 'A';
    dna::Sequence refined =
        refineDraft(dna::Sequence(draft), reads, 8);
    EXPECT_EQ(refined, original);
}

TEST(BmaTest, RefineDraftKeepsLength)
{
    dnastore::Rng rng(8);
    dna::Sequence original = randomSeq(rng, 120);
    std::vector<dna::Sequence> reads;
    for (int i = 0; i < 5; ++i)
        reads.push_back(idsNoise(rng, original, 0.02, 0.02, 0.02));
    dna::Sequence refined = refineDraft(original, reads, 8);
    EXPECT_EQ(refined.size(), 120u);
}

TEST(BmaTest, SingleReadPassesThrough)
{
    dna::Sequence read("ACGTACGTAC");
    EXPECT_EQ(bmaDoubleSided({read}, 10), read);
}

TEST(BmaTest, EmptyClusterThrows)
{
    EXPECT_THROW(bmaForward({}, 10), dnastore::FatalError);
}

/** Parameterized: reconstruction accuracy across cluster sizes. */
class BmaClusterSizeTest : public ::testing::TestWithParam<int>
{};

TEST_P(BmaClusterSizeTest, AccuracyImprovesWithClusterSize)
{
    int cluster_size = GetParam();
    dnastore::Rng rng(6000 + cluster_size);
    size_t total_errors = 0;
    for (int t = 0; t < 20; ++t) {
        dna::Sequence original = randomSeq(rng, 150);
        std::vector<dna::Sequence> reads;
        for (int i = 0; i < cluster_size; ++i)
            reads.push_back(idsNoise(rng, original, 0.01, 0.003,
                                     0.003));
        total_errors += dna::levenshteinDistance(
            bmaDoubleSided(reads, 150), original);
    }
    // With >= 5 reads, the average error should be well below the
    // per-read error burden (~2.4 errors/read).
    if (cluster_size >= 5) {
        EXPECT_LT(total_errors, 20u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BmaClusterSizeTest,
                         ::testing::Values(1, 3, 5, 9, 15));

} // namespace
} // namespace dnastore::consensus
